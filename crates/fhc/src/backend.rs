//! Pluggable similarity backends.
//!
//! Everything the classifier does — training-side feature matrices,
//! threshold tuning, and the serving hot path — reduces to one operation:
//! *given a query sample, compute the per-`(view, class)` maximum SSDeep
//! similarity row against the reference set*. [`SimilarityBackend`]
//! abstracts that operation so the execution strategy can be chosen at
//! runtime without touching scores:
//!
//! * [`ScanBackend`] — the original unindexed scan. Every reference hash of
//!   every class is compared with plain [`ssdeep::compare()`], re-normalizing
//!   signatures per comparison. Kept as the verification oracle and the
//!   benchmark baseline.
//! * [`IndexedBackend`] — the prepared block-size-bucketed index built by
//!   [`ReferenceSet`]: only buckets whose block size is compatible with the
//!   query's are visited, and each comparison skips straight to the
//!   edit-distance DP — bounded by the cell's running maximum score, so a
//!   reference that cannot beat the class's best match so far is abandoned
//!   mid-DP (`ssdeep::compare_prepared_min` over the banded
//!   `ssdeep::fastdist` kernel). The default.
//! * [`ShardedBackend`] — the indexed scoring, with the reference *classes*
//!   partitioned across N shards scored on a **persistent worker pool**
//!   ([`hpcutil::WorkerPool`]) and their partial rows max-merged. This
//!   parallelizes a *single* query (latency), where the batch helpers
//!   parallelize across queries (throughput). Inside a parallel batch
//!   worker the shards are scored serially instead — the batch is already
//!   the parallel axis, and nesting `serving workers x shards` threads
//!   would only add scheduling overhead.
//! * [`RemoteBackend`] — the same
//!   partition/max-merge contract with the shards behind a transport: each
//!   partial row is computed by a shard worker process (`fhc-shardd`) over
//!   a persistent socket. See [`crate::shardnet`].
//! * [`GatewayBackend`] — remote scoring through an `fhc-gateway` front
//!   door, which coalesces concurrently arriving queries into batched
//!   wire frames per shard. See [`crate::shardnet::gateway`].
//!
//! All are **score-identical by construction**: they assemble rows from the
//! same per-cell scoring primitives on the same [`ReferenceSet`], differing
//! only in indexing and scheduling. The indexed primitive prunes with each
//! cell's running maximum as a score budget; max-pruning is exact for
//! max-merge (an abandoned comparison could not have changed the cell's
//! maximum), so sharding and remoting — which max-merge disjoint partial
//! rows — inherit the pruning untouched. Seeded equivalence suites (in this
//! module, `tests/integration_backends.rs`, and
//! `tests/integration_remote.rs`) enforce byte-identical rows and
//! predictions.
//!
//! Backend choice is a *runtime* concern like
//! [`ServingConfig`](crate::serving::ServingConfig): it is never persisted,
//! and a stored artifact can be opened under any backend (see
//! [`TrainedClassifier::load_with`](crate::serving::TrainedClassifier::load_with)).
//! Only remote backends can fail after construction (their workers are
//! separate processes); [`SimilarityBackend::try_max_scores_into`] is the
//! fallible twin of `max_scores_into` that surfaces those failures as typed
//! errors instead of panics.

use crate::error::FhcError;
use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use crate::shardnet::{Endpoint, FleetBackend, FleetTopology, GatewayBackend, RemoteBackend};
use crate::similarity::ReferenceSet;
use hpcutil::{in_parallel_worker, par_map_indexed, ParallelConfig, WorkerPool};
use std::sync::Arc;

/// A strategy for scoring query samples against a [`ReferenceSet`].
///
/// The one required operation is [`SimilarityBackend::max_scores_into`];
/// the row- and matrix-level conveniences are provided on top of it and the
/// metadata accessors delegate to the reference set. Implementations must be
/// pure functions of `(reference set, query)` — two backends over the same
/// reference set must produce byte-identical rows.
pub trait SimilarityBackend: Send + Sync {
    /// The reference set this backend scores against.
    fn reference(&self) -> &ReferenceSet;

    /// Write the similarity row of one prepared query into `out`: for every
    /// active view and every known class, the maximum SSDeep similarity
    /// (scaled to `0.0..=100.0`) of the query against that class's reference
    /// samples, in the reference set's kind-major column order.
    ///
    /// `out` is fully overwritten and its length must equal
    /// [`ReferenceSet::n_columns`].
    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]);

    /// Fallible twin of [`SimilarityBackend::max_scores_into`].
    ///
    /// In-process backends cannot fail and use this default (delegate and
    /// succeed); backends with external dependencies — remote shard workers
    /// — override it to surface transport failures as typed errors instead
    /// of panicking. Serving paths that must stay up under worker loss
    /// (`TrainedClassifier::try_classify*`) route through this method.
    fn try_max_scores_into(
        &self,
        query: &PreparedSampleFeatures,
        out: &mut [f64],
    ) -> Result<(), FhcError> {
        self.max_scores_into(query, out);
        Ok(())
    }

    /// Number of columns of the rows this backend produces.
    fn n_columns(&self) -> usize {
        self.reference().n_columns()
    }

    /// Known class names, indexed by known-class id.
    fn class_names(&self) -> &[String] {
        self.reference().class_names()
    }

    /// Number of known classes.
    fn n_classes(&self) -> usize {
        self.reference().n_classes()
    }

    /// Active feature kinds.
    fn kinds(&self) -> &[FeatureKind] {
        self.reference().kinds()
    }

    /// Similarity row of one already-prepared query.
    fn feature_vector_prepared(&self, query: &PreparedSampleFeatures) -> Vec<f64> {
        let mut row = vec![0.0; self.n_columns()];
        self.max_scores_into(query, &mut row);
        row
    }

    /// Fallible twin of [`SimilarityBackend::feature_vector_prepared`].
    fn try_feature_vector_prepared(
        &self,
        query: &PreparedSampleFeatures,
    ) -> Result<Vec<f64>, FhcError> {
        let mut row = vec![0.0; self.n_columns()];
        self.try_max_scores_into(query, &mut row)?;
        Ok(row)
    }

    /// Similarity row of one plain sample (prepares it first).
    fn feature_vector(&self, sample: &SampleFeatures) -> Vec<f64> {
        self.feature_vector_prepared(&PreparedSampleFeatures::prepare(sample))
    }

    /// Similarity rows of a batch of prepared queries, computed in parallel
    /// across queries with the given configuration.
    fn feature_matrix_prepared(
        &self,
        queries: &[PreparedSampleFeatures],
        parallel: ParallelConfig,
    ) -> Vec<Vec<f64>> {
        par_map_indexed(queries.len(), parallel, |i| {
            self.feature_vector_prepared(&queries[i])
        })
    }

    /// Similarity rows of a batch of plain samples (each prepared once),
    /// computed in parallel across queries.
    fn feature_matrix(
        &self,
        samples: &[SampleFeatures],
        parallel: ParallelConfig,
    ) -> Vec<Vec<f64>> {
        par_map_indexed(samples.len(), parallel, |i| {
            self.feature_vector(&samples[i])
        })
    }
}

/// The original unindexed oracle: every reference hash of every class is
/// compared with plain [`ssdeep::compare()`], re-normalizing signatures on
/// every comparison.
///
/// Slowest by far, but structurally the simplest possible implementation —
/// the equivalence suites measure every other backend against it.
#[derive(Debug, Clone)]
pub struct ScanBackend {
    reference: Arc<ReferenceSet>,
}

impl ScanBackend {
    /// A scan backend over `reference`.
    pub fn new(reference: Arc<ReferenceSet>) -> Self {
        Self { reference }
    }
}

impl SimilarityBackend for ScanBackend {
    fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        let reference = &*self.reference;
        assert_eq!(out.len(), reference.n_columns(), "row width mismatch");
        for (kind_idx, &kind) in reference.kinds().iter().enumerate() {
            // The prepared query owns its original hash, so the scan path
            // costs exactly what it did before preparation existed.
            let hash = query.get(kind).map(|p| p.hash());
            for class in 0..reference.n_classes() {
                let best = hash.map_or(0, |q| reference.cell_score_scan(kind_idx, class, q));
                out[reference.column_index(kind_idx, class)] = f64::from(best);
            }
        }
    }
}

/// The prepared block-size-bucketed index (the default backend): per
/// `(view, class)` cell only the buckets whose block size is compatible with
/// the query's are compared at all.
#[derive(Debug, Clone)]
pub struct IndexedBackend {
    reference: Arc<ReferenceSet>,
}

impl IndexedBackend {
    /// An indexed backend over `reference` (the index itself was built by
    /// [`ReferenceSet::new`] and is shared, not copied).
    pub fn new(reference: Arc<ReferenceSet>) -> Self {
        Self { reference }
    }
}

impl SimilarityBackend for IndexedBackend {
    fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        let reference = &*self.reference;
        assert_eq!(out.len(), reference.n_columns(), "row width mismatch");
        reference.max_scores_into_indexed(query, out);
    }
}

/// Deal `0..n_classes` round-robin across `n_shards` lists (class `i` goes
/// to shard `i % n_shards`).
///
/// This is **the** partition rule of the sharded topologies: it is shared
/// by [`ShardedBackend`], by [`RemoteBackend::connect`]'s auto-assignment
/// of unpartitioned workers, and by `fhc-shardd --shard i/n` — so an
/// in-process shard, a loopback worker, and a remote daemon all agree on
/// which classes shard `i` owns.
pub fn round_robin_partition(n_classes: usize, n_shards: usize) -> Vec<Vec<usize>> {
    let n_shards = n_shards.max(1);
    let mut partition: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for class in 0..n_classes {
        partition[class % n_shards].push(class);
    }
    partition
}

/// The indexed scoring with the reference classes partitioned across shards
/// that score one query in parallel.
///
/// Classes are dealt round-robin across shards
/// ([`round_robin_partition`]), each shard scores its classes'
/// `(view, class)` cells through the same block-size-bucketed index as
/// [`IndexedBackend`], and the partial per-class rows are max-merged into
/// the output row. Shards touch disjoint classes, so the max-merge is
/// trivially conflict-free and the result is score-identical to the other
/// backends by construction.
///
/// Shards run on a **persistent worker pool** created once per backend (and
/// shared by clones), so a query costs channel sends instead of thread
/// spawns. When scoring happens *inside* a parallel batch worker
/// (`classify_batch`, `feature_matrix`), the shards are scored serially on
/// the batch worker instead: the batch is already using every core, and
/// per-query fan-out there would only multiply threads
/// (`serving workers x shards`) without adding parallelism.
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    reference: Arc<ReferenceSet>,
    /// The shard count as requested (before clamping), so the configuration
    /// round-trips through [`AnyBackend::config`].
    requested: usize,
    /// Known-class ids per shard (round-robin partition; every shard
    /// non-empty unless there are no classes at all). Shared with the pool
    /// jobs.
    shards: Arc<Vec<Vec<usize>>>,
    /// Persistent shard workers; `None` for the degenerate single-shard
    /// backend, which scores inline.
    pool: Option<Arc<WorkerPool>>,
}

impl ShardedBackend {
    /// A sharded backend over `reference` with `shards` partitions. `0`
    /// means "one shard per available hardware thread"; the effective count
    /// is clamped to the number of known classes (a shard with no classes
    /// would just idle).
    pub fn new(reference: Arc<ReferenceSet>, shards: usize) -> Self {
        let requested = shards;
        let hw = if shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            shards
        };
        let n_shards = hw.clamp(1, reference.n_classes().max(1));
        let partition = round_robin_partition(reference.n_classes(), n_shards);
        Self {
            reference,
            requested,
            shards: Arc::new(partition),
            pool: (n_shards > 1).then(|| Arc::new(WorkerPool::new(n_shards))),
        }
    }

    /// The effective number of shards (after clamping to the class count).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The known-class ids owned by one shard.
    pub fn shard_classes(&self, shard: usize) -> &[usize] {
        &self.shards[shard]
    }

    /// The partial row of one shard: `(column, score)` cells for every
    /// `(view, class)` the shard owns.
    fn shard_partial(&self, shard: usize, query: &PreparedSampleFeatures) -> Vec<(usize, f64)> {
        shard_partial(&self.reference, &self.shards[shard], query)
    }
}

/// The partial row of one class partition (free function so pool jobs can
/// run it from `'static` closures over `Arc`s), through the inverted gram
/// index restricted to the shard's classes.
fn shard_partial(
    reference: &ReferenceSet,
    classes: &[usize],
    query: &PreparedSampleFeatures,
) -> Vec<(usize, f64)> {
    reference.partial_row_cells(classes, query)
}

impl SimilarityBackend for ShardedBackend {
    fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        assert_eq!(out.len(), self.reference.n_columns(), "row width mismatch");
        out.fill(0.0);
        match &self.pool {
            // Score shards on the persistent pool — unless this query is
            // already running on a parallel worker (a batch worker or a
            // pool thread), where serial scoring is both faster and
            // deadlock-free.
            Some(pool) if !in_parallel_worker() => {
                let reference = Arc::clone(&self.reference);
                let shards = Arc::clone(&self.shards);
                let query = Arc::new(query.clone());
                let partials = pool.run_indexed(self.shards.len(), move |shard| {
                    shard_partial(&reference, &shards[shard], &query)
                });
                for (col, score) in partials.into_iter().flatten() {
                    out[col] = out[col].max(score);
                }
            }
            _ => {
                for shard in 0..self.shards.len() {
                    for (col, score) in self.shard_partial(shard, query) {
                        out[col] = out[col].max(score);
                    }
                }
            }
        }
    }
}

/// Runtime selection of the similarity backend.
///
/// Part of the unified [`FhcConfig`](crate::config::FhcConfig). Like
/// [`ServingConfig`](crate::serving::ServingConfig) this is a per-process
/// concern: it is never persisted into artifacts, and any stored artifact
/// can be opened under any backend — including a remote topology, where the
/// artifact's scoring is delegated to `fhc-shardd` workers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendConfig {
    /// The unindexed oracle ([`ScanBackend`]).
    Scan,
    /// The prepared block-size-bucketed index ([`IndexedBackend`]).
    #[default]
    Indexed,
    /// The class-sharded parallel index ([`ShardedBackend`]).
    Sharded {
        /// Number of shards; `0` means one per available hardware thread.
        shards: usize,
    },
    /// Shard workers behind a transport
    /// ([`RemoteBackend`]).
    Remote {
        /// The worker endpoints to fan out across.
        endpoints: Vec<Endpoint>,
        /// The tenant to select on every worker (`tenant=NAME` in the
        /// spec); `None` expects the default tenant.
        tenant: Option<String>,
    },
    /// A batching `fhc-gateway` front door fronting the shard fleet
    /// ([`GatewayBackend`]).
    Gateway {
        /// The gateway endpoint to score through.
        endpoint: Endpoint,
        /// The tenant to select on the gateway; `None` expects the
        /// default tenant.
        tenant: Option<String>,
    },
    /// A self-healing shard fleet with replicas, hedged requests, and
    /// reference push ([`FleetBackend`]).
    Fleet {
        /// The declared topology: shards and their replicas.
        topology: FleetTopology,
        /// The tenant to select on every fleet node; `None` expects the
        /// default tenant.
        tenant: Option<String>,
    },
}

impl BackendConfig {
    /// A remote configuration over `endpoints` (default tenant).
    pub fn remote(endpoints: impl IntoIterator<Item = Endpoint>) -> Self {
        BackendConfig::Remote {
            endpoints: endpoints.into_iter().collect(),
            tenant: None,
        }
    }

    /// Build the selected backend over `reference`.
    ///
    /// Only remote construction can fail (dialing and validating the worker
    /// handshakes); the in-process backends always succeed.
    pub fn try_build(&self, reference: Arc<ReferenceSet>) -> Result<AnyBackend, FhcError> {
        Ok(match self {
            BackendConfig::Scan => AnyBackend::Scan(ScanBackend::new(reference)),
            BackendConfig::Indexed => AnyBackend::Indexed(IndexedBackend::new(reference)),
            BackendConfig::Sharded { shards } => {
                AnyBackend::Sharded(ShardedBackend::new(reference, *shards))
            }
            BackendConfig::Remote { endpoints, tenant } => AnyBackend::Remote(
                RemoteBackend::connect_tenant(reference, endpoints, tenant.as_deref())
                    .map_err(FhcError::Net)?,
            ),
            BackendConfig::Gateway { endpoint, tenant } => AnyBackend::Gateway(
                GatewayBackend::connect_tenant(reference, endpoint, tenant.as_deref())
                    .map_err(FhcError::Net)?,
            ),
            BackendConfig::Fleet { topology, tenant } => AnyBackend::Fleet(
                FleetBackend::connect_tenant(reference, topology.clone(), tenant.as_deref())
                    .map_err(FhcError::Net)?,
            ),
        })
    }

    /// Build the selected backend over `reference`, panicking if a remote
    /// topology cannot be connected (use [`BackendConfig::try_build`] to
    /// handle that case).
    pub fn build(&self, reference: Arc<ReferenceSet>) -> AnyBackend {
        self.try_build(reference)
            .unwrap_or_else(|e| panic!("failed to build backend {self}: {e}"))
    }
}

impl std::fmt::Display for BackendConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendConfig::Scan => f.write_str("scan"),
            BackendConfig::Indexed => f.write_str("indexed"),
            BackendConfig::Sharded { shards: 0 } => f.write_str("sharded(auto)"),
            BackendConfig::Sharded { shards } => write!(f, "sharded({shards})"),
            BackendConfig::Remote { endpoints, tenant } => {
                f.write_str("remote(")?;
                for (i, endpoint) in endpoints.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{endpoint}")?;
                }
                if let Some(tenant) = tenant {
                    write!(f, ";tenant={tenant}")?;
                }
                f.write_str(")")
            }
            BackendConfig::Gateway { endpoint, tenant } => {
                write!(f, "gateway({endpoint}")?;
                if let Some(tenant) = tenant {
                    write!(f, ";tenant={tenant}")?;
                }
                f.write_str(")")
            }
            BackendConfig::Fleet { topology, tenant } => {
                write!(f, "fleet({topology}")?;
                if let Some(tenant) = tenant {
                    write!(f, ";tenant={tenant}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl std::str::FromStr for BackendConfig {
    type Err = String;

    /// Parse a command-line backend spec: `scan`, `indexed`, `sharded`,
    /// `sharded:N` (`N = 0` or `sharded` alone means auto), or
    /// `remote:EP[,EP...]` with endpoints as accepted by
    /// `Endpoint` parsing (`tcp:HOST:PORT`, `HOST:PORT`, `unix:PATH`).
    ///
    /// The networked specs accept a `;tenant=NAME` item anywhere in their
    /// `;`-separated payload — `remote:h:9000;tenant=acme`,
    /// `gateway:h:7000;tenant=acme`,
    /// `fleet:h:9000;replica=h:9100;tenant=acme` — selecting that tenant
    /// on every handshake. Without it the default tenant is expected.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scan" => return Ok(BackendConfig::Scan),
            "indexed" => return Ok(BackendConfig::Indexed),
            "sharded" => return Ok(BackendConfig::Sharded { shards: 0 }),
            _ => {}
        }
        if let Some(count) = s.strip_prefix("sharded:") {
            let shards = count
                .parse::<usize>()
                .map_err(|e| format!("invalid shard count {count:?}: {e}"))?;
            return Ok(BackendConfig::Sharded { shards });
        }
        if let Some(list) = s.strip_prefix("remote:") {
            let (rest, tenant) = split_tenant(list)?;
            let endpoints = rest
                .split(',')
                .map(|e| e.trim().parse::<Endpoint>())
                .collect::<Result<Vec<_>, _>>()?;
            if endpoints.is_empty() {
                return Err("remote backend needs at least one endpoint".into());
            }
            return Ok(BackendConfig::Remote { endpoints, tenant });
        }
        if let Some(spec) = s.strip_prefix("gateway:") {
            let (rest, tenant) = split_tenant(spec)?;
            let endpoint = rest.trim().parse::<Endpoint>()?;
            return Ok(BackendConfig::Gateway { endpoint, tenant });
        }
        if let Some(spec) = s.strip_prefix("fleet:") {
            let (rest, tenant) = split_tenant(spec)?;
            let topology = rest.trim().parse::<FleetTopology>()?;
            return Ok(BackendConfig::Fleet { topology, tenant });
        }
        Err(format!(
            "unknown backend {s:?}: expected scan, indexed, sharded[:N], \
             remote:EP[,EP...], gateway:EP, or \
             fleet:EP[;replica=EP[,EP...]][;EP...], \
             each optionally with ;tenant=NAME"
        ))
    }
}

/// Extract one `tenant=NAME` item from a `;`-separated backend payload,
/// returning the payload with the item removed and the validated name.
/// More than one `tenant=` item, or a malformed name, is an error.
fn split_tenant(payload: &str) -> Result<(String, Option<String>), String> {
    let mut tenant: Option<String> = None;
    let mut rest: Vec<&str> = Vec::new();
    for item in payload.split(';') {
        if let Some(name) = item.trim().strip_prefix("tenant=") {
            if tenant.is_some() {
                return Err("tenant= may appear at most once in a backend spec".into());
            }
            if !crate::shardnet::wire::valid_tenant(name) {
                return Err(format!(
                    "invalid tenant {name:?}: want 1..={} characters of [A-Za-z0-9._-]",
                    crate::shardnet::wire::MAX_TENANT_LEN
                ));
            }
            tenant = Some(name.to_string());
        } else {
            rest.push(item);
        }
    }
    Ok((rest.join(";"), tenant))
}

/// A concrete backend chosen at runtime — the closed set of
/// [`SimilarityBackend`] implementations a [`BackendConfig`] can build,
/// stored inline (clonable, no boxing) by
/// [`TrainedClassifier`](crate::serving::TrainedClassifier).
#[derive(Debug, Clone)]
pub enum AnyBackend {
    /// The unindexed oracle.
    Scan(ScanBackend),
    /// The prepared index (default).
    Indexed(IndexedBackend),
    /// The class-sharded parallel index.
    Sharded(ShardedBackend),
    /// Shard workers behind a transport.
    Remote(RemoteBackend),
    /// Remote scoring through an `fhc-gateway` front door.
    Gateway(GatewayBackend),
    /// A self-healing, replicated shard fleet.
    Fleet(FleetBackend),
}

impl AnyBackend {
    /// The configuration that (re)builds this backend.
    pub fn config(&self) -> BackendConfig {
        match self {
            AnyBackend::Scan(_) => BackendConfig::Scan,
            AnyBackend::Indexed(_) => BackendConfig::Indexed,
            AnyBackend::Sharded(b) => BackendConfig::Sharded {
                shards: b.requested,
            },
            AnyBackend::Remote(b) => BackendConfig::Remote {
                endpoints: b.endpoints(),
                tenant: b.tenant().map(str::to_string),
            },
            AnyBackend::Gateway(b) => BackendConfig::Gateway {
                endpoint: b.endpoint().clone(),
                tenant: b.tenant().map(str::to_string),
            },
            AnyBackend::Fleet(b) => BackendConfig::Fleet {
                topology: b.topology(),
                tenant: b.tenant().map(str::to_string),
            },
        }
    }

    /// Whether this backend scores through a transport where batching
    /// changes the wire shape: a whole batch travels in few
    /// `ScoreBatchRequest` frames instead of one round trip per query.
    pub fn scores_batches_remotely(&self) -> bool {
        matches!(
            self,
            AnyBackend::Remote(_) | AnyBackend::Gateway(_) | AnyBackend::Fleet(_)
        )
    }

    /// Compute one dense similarity row per query, in query order.
    ///
    /// Transport backends ship the whole batch through their batched wire
    /// path (chunked to the frame budget); in-process backends score per
    /// query — they have no round trips to amortize. Like the other `try_*`
    /// APIs, the batch either scores completely or the first failure is
    /// returned.
    pub fn try_feature_rows_prepared(
        &self,
        queries: &[PreparedSampleFeatures],
    ) -> Result<Vec<Vec<f64>>, FhcError> {
        match self {
            AnyBackend::Remote(b) => Ok(b.try_feature_rows_prepared(queries)?),
            AnyBackend::Gateway(b) => Ok(b.try_feature_rows_prepared(queries)?),
            AnyBackend::Fleet(b) => Ok(b.try_feature_rows_prepared(queries)?),
            _ => queries
                .iter()
                .map(|q| self.try_feature_vector_prepared(q))
                .collect(),
        }
    }

    /// The backend as a trait object (for code that is generic over
    /// backends without being generic over this enum).
    pub fn as_dyn(&self) -> &dyn SimilarityBackend {
        match self {
            AnyBackend::Scan(b) => b,
            AnyBackend::Indexed(b) => b,
            AnyBackend::Sharded(b) => b,
            AnyBackend::Remote(b) => b,
            AnyBackend::Gateway(b) => b,
            AnyBackend::Fleet(b) => b,
        }
    }
}

impl SimilarityBackend for AnyBackend {
    fn reference(&self) -> &ReferenceSet {
        self.as_dyn().reference()
    }

    fn max_scores_into(&self, query: &PreparedSampleFeatures, out: &mut [f64]) {
        self.as_dyn().max_scores_into(query, out);
    }

    fn try_max_scores_into(
        &self,
        query: &PreparedSampleFeatures,
        out: &mut [f64],
    ) -> Result<(), FhcError> {
        self.as_dyn().try_max_scores_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binary::elf::ElfBuilder;

    fn make_sample(class_tag: &str, variant: u64) -> SampleFeatures {
        let mut b = ElfBuilder::new();
        let mut code: Vec<u8> = class_tag
            .bytes()
            .cycle()
            .take(24_000)
            .enumerate()
            .map(|(i, c)| c.wrapping_mul(17).wrapping_add((i / 96) as u8))
            .collect();
        for (i, byte) in code
            .iter_mut()
            .skip((variant as usize * 512) % 20_000)
            .take(256)
            .enumerate()
        {
            *byte ^= (variant as u8).wrapping_add(i as u8);
        }
        b.add_text_section(code);
        b.add_rodata_section(
            format!("{class_tag} tool messages and usage\0v{variant}\0").into_bytes(),
        );
        for i in 0..30 {
            b.add_global_function(&format!("{class_tag}_routine_{i}"), (i * 128) as u64, 128);
        }
        b.add_global_function(&format!("{class_tag}_extra_{variant}"), 30 * 128, 64);
        SampleFeatures::extract(&b.build())
    }

    fn reference(n_classes: usize) -> Arc<ReferenceSet> {
        let tags = ["velvet", "openmalaria", "gromacs", "lammps", "quantum"];
        let mut train = Vec::new();
        let mut labels = Vec::new();
        for class in 0..n_classes {
            for variant in 0..2 {
                train.push(make_sample(tags[class % tags.len()], variant));
                labels.push(class);
            }
        }
        Arc::new(ReferenceSet::new(
            (0..n_classes).map(|c| format!("class-{c}")).collect(),
            &train,
            &labels,
            &FeatureKind::ALL,
        ))
    }

    fn probes() -> Vec<PreparedSampleFeatures> {
        [
            make_sample("velvet", 0),
            make_sample("velvet", 9),
            make_sample("gromacs", 4),
            make_sample("stranger", 1),
        ]
        .iter()
        .map(PreparedSampleFeatures::prepare)
        .collect()
    }

    #[test]
    fn all_backends_agree_on_every_probe() {
        let rs = reference(4);
        let scan = ScanBackend::new(rs.clone());
        let indexed = IndexedBackend::new(rs.clone());
        for shards in [1, 2, 3, rs.n_classes(), rs.n_classes() + 5] {
            let sharded = ShardedBackend::new(rs.clone(), shards);
            for probe in &probes() {
                let expected = scan.feature_vector_prepared(probe);
                assert_eq!(indexed.feature_vector_prepared(probe), expected);
                assert_eq!(
                    sharded.feature_vector_prepared(probe),
                    expected,
                    "sharded({shards}) diverged"
                );
            }
        }
    }

    #[test]
    fn backends_agree_with_reference_set_paths() {
        let rs = reference(3);
        let indexed = IndexedBackend::new(rs.clone());
        let scan = ScanBackend::new(rs.clone());
        for probe in &probes() {
            let plain = probe.to_sample_features();
            assert_eq!(
                indexed.feature_vector_prepared(probe),
                rs.feature_vector(&plain)
            );
            assert_eq!(
                scan.feature_vector_prepared(probe),
                rs.feature_vector_scan(&plain)
            );
        }
    }

    #[test]
    fn sharded_partition_covers_every_class_exactly_once() {
        let rs = reference(5);
        for shards in [1, 2, 3, 5, 9] {
            let backend = ShardedBackend::new(rs.clone(), shards);
            assert!(backend.n_shards() <= rs.n_classes());
            assert!(backend.n_shards() >= 1);
            let mut seen = vec![0usize; rs.n_classes()];
            for shard in 0..backend.n_shards() {
                assert!(!backend.shard_classes(shard).is_empty());
                for &class in backend.shard_classes(shard) {
                    seen[class] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "partition must be exact");
        }
    }

    #[test]
    fn shard_count_zero_means_auto_and_roundtrips_config() {
        let rs = reference(2);
        let auto = ShardedBackend::new(rs.clone(), 0);
        assert!(auto.n_shards() >= 1 && auto.n_shards() <= 2);
        let any = BackendConfig::Sharded { shards: 0 }.build(rs);
        assert_eq!(any.config(), BackendConfig::Sharded { shards: 0 });
    }

    #[test]
    fn empty_class_scores_zero_under_every_backend() {
        // A class with no reference samples (legal for an in-memory
        // ReferenceSet) must produce all-zero columns everywhere.
        let train = vec![make_sample("velvet", 0), make_sample("velvet", 1)];
        let rs = Arc::new(ReferenceSet::new(
            vec!["Velvet".into(), "Empty".into()],
            &train,
            &[0, 0],
            &FeatureKind::ALL,
        ));
        let probe = PreparedSampleFeatures::prepare(&make_sample("velvet", 2));
        for config in [
            BackendConfig::Scan,
            BackendConfig::Indexed,
            BackendConfig::Sharded { shards: 2 },
        ] {
            let row = config.build(rs.clone()).feature_vector_prepared(&probe);
            assert_eq!(row.len(), rs.n_columns());
            for kind_idx in 0..rs.kinds().len() {
                assert_eq!(row[kind_idx * 2 + 1], 0.0, "empty class under {config}");
            }
        }
        let scan_row = BackendConfig::Scan
            .build(rs.clone())
            .feature_vector_prepared(&probe);
        for config in [BackendConfig::Indexed, BackendConfig::Sharded { shards: 2 }] {
            assert_eq!(
                config.build(rs.clone()).feature_vector_prepared(&probe),
                scan_row
            );
        }
    }

    #[test]
    fn single_class_reference_works_under_every_backend() {
        let train = vec![make_sample("velvet", 0)];
        let rs = Arc::new(ReferenceSet::new(
            vec!["Velvet".into()],
            &train,
            &[0],
            &FeatureKind::ALL,
        ));
        let probe = PreparedSampleFeatures::prepare(&train[0]);
        let expected = BackendConfig::Scan
            .build(rs.clone())
            .feature_vector_prepared(&probe);
        assert_eq!(expected[0], 100.0);
        for config in [
            BackendConfig::Indexed,
            BackendConfig::Sharded { shards: 1 },
            BackendConfig::Sharded { shards: 4 },
        ] {
            assert_eq!(
                config.build(rs.clone()).feature_vector_prepared(&probe),
                expected
            );
        }
    }

    #[test]
    fn matrix_helpers_match_row_helpers() {
        let rs = reference(3);
        let backend = BackendConfig::Sharded { shards: 2 }.build(rs);
        let prepared = probes();
        let plain: Vec<SampleFeatures> = prepared
            .iter()
            .map(PreparedSampleFeatures::to_sample_features)
            .collect();
        let parallel = ParallelConfig::with_threads(2).with_chunk(1);
        let from_prepared = backend.feature_matrix_prepared(&prepared, parallel);
        let from_plain = backend.feature_matrix(&plain, parallel);
        assert_eq!(from_prepared, from_plain);
        for (i, row) in from_prepared.iter().enumerate() {
            assert_eq!(*row, backend.feature_vector_prepared(&prepared[i]));
        }
    }

    #[test]
    fn backend_config_display_names_are_stable() {
        assert_eq!(BackendConfig::Scan.to_string(), "scan");
        assert_eq!(BackendConfig::Indexed.to_string(), "indexed");
        assert_eq!(
            BackendConfig::Sharded { shards: 3 }.to_string(),
            "sharded(3)"
        );
        assert_eq!(
            BackendConfig::Sharded { shards: 0 }.to_string(),
            "sharded(auto)"
        );
        assert_eq!(
            BackendConfig::remote([
                Endpoint::Tcp("127.0.0.1:9000".into()),
                Endpoint::Unix("/tmp/fhc.sock".into()),
            ])
            .to_string(),
            "remote(tcp:127.0.0.1:9000,unix:/tmp/fhc.sock)"
        );
        assert_eq!(
            BackendConfig::Fleet {
                topology: "h1:9000;replica=h1:9100;h2:9000".parse().unwrap(),
                tenant: None,
            }
            .to_string(),
            "fleet(tcp:h1:9000;replica=tcp:h1:9100;tcp:h2:9000)"
        );
        assert_eq!(
            BackendConfig::Gateway {
                endpoint: Endpoint::Tcp("127.0.0.1:7000".into()),
                tenant: Some("acme".into()),
            }
            .to_string(),
            "gateway(tcp:127.0.0.1:7000;tenant=acme)"
        );
        assert_eq!(BackendConfig::default(), BackendConfig::Indexed);
    }

    #[test]
    fn backend_config_parses_from_str() {
        assert_eq!(
            "scan".parse::<BackendConfig>().unwrap(),
            BackendConfig::Scan
        );
        assert_eq!(
            "indexed".parse::<BackendConfig>().unwrap(),
            BackendConfig::Indexed
        );
        assert_eq!(
            "sharded".parse::<BackendConfig>().unwrap(),
            BackendConfig::Sharded { shards: 0 }
        );
        assert_eq!(
            "sharded:5".parse::<BackendConfig>().unwrap(),
            BackendConfig::Sharded { shards: 5 }
        );
        assert_eq!(
            "remote:127.0.0.1:9000,unix:/tmp/w.sock"
                .parse::<BackendConfig>()
                .unwrap(),
            BackendConfig::remote([
                Endpoint::Tcp("127.0.0.1:9000".into()),
                Endpoint::Unix("/tmp/w.sock".into()),
            ])
        );
        assert_eq!(
            "fleet:127.0.0.1:9000;replica=127.0.0.1:9100;unix:/tmp/w.sock"
                .parse::<BackendConfig>()
                .unwrap(),
            BackendConfig::Fleet {
                topology: FleetTopology::new(vec![
                    crate::shardnet::FleetShard {
                        primary: Endpoint::Tcp("127.0.0.1:9000".into()),
                        replicas: vec![Endpoint::Tcp("127.0.0.1:9100".into())],
                    },
                    crate::shardnet::FleetShard::solo(Endpoint::Unix("/tmp/w.sock".into())),
                ]),
                tenant: None,
            }
        );
        // Display forms reparse to the same configuration.
        for config in [
            BackendConfig::Scan,
            BackendConfig::Indexed,
            BackendConfig::Sharded { shards: 4 },
            BackendConfig::remote([Endpoint::Tcp("h:1".into())]),
            BackendConfig::Fleet {
                topology: "h:1;replica=h:2;h:3".parse().unwrap(),
                tenant: None,
            },
        ] {
            // `sharded(4)`-style display is for humans; the parser speaks
            // the CLI spelling.
            let spelled = match &config {
                BackendConfig::Sharded { shards } => format!("sharded:{shards}"),
                BackendConfig::Remote { endpoints, .. } => format!("remote:{}", endpoints[0]),
                BackendConfig::Fleet { topology, .. } => format!("fleet:{topology}"),
                other => other.to_string(),
            };
            assert_eq!(spelled.parse::<BackendConfig>().unwrap(), config);
        }
        for bad in [
            "bogus",
            "sharded:x",
            "remote:",
            "remote:nonsense",
            "fleet:",
            "fleet:replica=h:1",
            "fleet:h:1;;h:2",
        ] {
            assert!(bad.parse::<BackendConfig>().is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn backend_config_tenant_selector_parses_and_round_trips() {
        // tenant= may sit anywhere in the `;`-separated payload.
        let remote = "remote:127.0.0.1:9000;tenant=acme"
            .parse::<BackendConfig>()
            .unwrap();
        assert_eq!(
            remote,
            BackendConfig::Remote {
                endpoints: vec![Endpoint::Tcp("127.0.0.1:9000".into())],
                tenant: Some("acme".into()),
            }
        );
        let gateway = "gateway:tenant=acme;127.0.0.1:7000"
            .parse::<BackendConfig>()
            .unwrap();
        assert_eq!(
            gateway,
            BackendConfig::Gateway {
                endpoint: Endpoint::Tcp("127.0.0.1:7000".into()),
                tenant: Some("acme".into()),
            }
        );
        let fleet = "fleet:h:1;replica=h:2;tenant=org.lab-7;h:3"
            .parse::<BackendConfig>()
            .unwrap();
        assert_eq!(
            fleet,
            BackendConfig::Fleet {
                topology: "h:1;replica=h:2;h:3".parse().unwrap(),
                tenant: Some("org.lab-7".into()),
            }
        );
        // Display forms with tenants reparse to the same configuration.
        for config in [remote, gateway, fleet] {
            let spelled = match &config {
                BackendConfig::Remote { endpoints, tenant } => {
                    format!(
                        "remote:{};tenant={}",
                        endpoints[0],
                        tenant.as_ref().unwrap()
                    )
                }
                BackendConfig::Gateway { endpoint, tenant } => {
                    format!("gateway:{};tenant={}", endpoint, tenant.as_ref().unwrap())
                }
                BackendConfig::Fleet { topology, tenant } => {
                    format!("fleet:{};tenant={}", topology, tenant.as_ref().unwrap())
                }
                other => other.to_string(),
            };
            assert_eq!(spelled.parse::<BackendConfig>().unwrap(), config);
        }
        // Malformed or duplicated tenants are rejected with a clear message.
        for bad in [
            "remote:h:1;tenant=",
            "remote:h:1;tenant=has space",
            "remote:h:1;tenant=a;tenant=b",
            "gateway:h:1;tenant=semi;colon",
            "fleet:h:1;tenant=\u{e9}clair",
        ] {
            let err = bad.parse::<BackendConfig>().unwrap_err();
            assert!(
                err.contains("tenant") || err.contains("endpoint"),
                "{bad:?} must fail mentioning the tenant or endpoint: {err}"
            );
        }
        let overlong = format!("remote:h:1;tenant={}", "t".repeat(65));
        assert!(overlong.parse::<BackendConfig>().is_err());
    }

    #[test]
    fn round_robin_partition_is_exact_and_stable() {
        assert_eq!(round_robin_partition(5, 2), vec![vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(round_robin_partition(2, 5).len(), 5);
        assert_eq!(round_robin_partition(0, 3), vec![vec![], vec![], vec![]]);
        // Zero shards clamps to one.
        assert_eq!(round_robin_partition(3, 0), vec![vec![0, 1, 2]]);
        // The ShardedBackend partition is exactly this rule.
        let rs = reference(5);
        let backend = ShardedBackend::new(rs, 2);
        for shard in 0..backend.n_shards() {
            assert_eq!(
                backend.shard_classes(shard),
                round_robin_partition(5, 2)[shard]
            );
        }
    }

    #[test]
    fn sharded_scores_identically_inside_parallel_workers() {
        // Inside a batch worker the sharded backend degrades to serial
        // shard scoring; the rows must stay byte-identical.
        let rs = reference(4);
        let sharded = ShardedBackend::new(rs.clone(), 2);
        let probes = probes();
        let direct: Vec<Vec<f64>> = probes
            .iter()
            .map(|p| sharded.feature_vector_prepared(p))
            .collect();
        // Force the threaded batch path with one probe per worker step.
        let via_batch = sharded.feature_matrix_prepared(
            &probes,
            ParallelConfig {
                threads: 2,
                chunk: 1,
            },
        );
        assert_eq!(via_batch, direct);
        // And inside a worker we really do take the serial path: observe
        // the flag the backends branch on.
        let flags = par_map_indexed(
            4,
            ParallelConfig {
                threads: 2,
                chunk: 1,
            },
            |_| hpcutil::in_parallel_worker(),
        );
        assert!(flags.iter().all(|&f| f));
    }

    #[test]
    fn try_paths_succeed_for_in_process_backends() {
        let rs = reference(3);
        let probe = &probes()[0];
        for config in [
            BackendConfig::Scan,
            BackendConfig::Indexed,
            BackendConfig::Sharded { shards: 2 },
        ] {
            let backend = config
                .try_build(rs.clone())
                .expect("in-process backends build");
            let row = backend
                .try_feature_vector_prepared(probe)
                .expect("in-process backends cannot fail");
            assert_eq!(row, backend.feature_vector_prepared(probe));
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let rs = reference(2);
        let backend = IndexedBackend::new(rs);
        let probe = probes().remove(0);
        let mut out = vec![0.0; 1];
        backend.max_scores_into(&probe, &mut out);
    }
}
