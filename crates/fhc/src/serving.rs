//! The serving half of the fit/predict API.
//!
//! [`FuzzyHashClassifier::fit`](crate::pipeline::FuzzyHashClassifier::fit)
//! pays the training cost once — feature extraction, the two-phase split,
//! grid search, threshold tuning, forest training — and returns a
//! [`TrainedClassifier`]: a self-contained artifact owning the reference
//! hashes, the tuned forest, and the confidence threshold. Classifying a new
//! executable is then just hash + similarity row + forest vote, with no
//! retraining; [`TrainedClassifier::classify_batch`] scores many executables
//! in parallel, and the `artifact` module persists the whole thing to disk
//! so the cost is amortized across processes.

use crate::backend::{AnyBackend, BackendConfig, SimilarityBackend};
use crate::config::FhcConfig;
use crate::error::FhcError;
use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use crate::pipeline::{aggregate_importance, FeatureImportance};
use crate::similarity::ReferenceSet;
use crate::threshold::{apply_threshold, ThresholdPoint, UNKNOWN_LABEL};
use hpcutil::{par_map_indexed, ParallelConfig};
use mlcore::forest::{RandomForest, RandomForestParams};
use mlcore::model::Model;
use std::sync::Arc;

/// Runtime configuration of the serving hot path.
///
/// Replaces the previously hardcoded parallelism of
/// [`TrainedClassifier::classify_batch`]. This is a *runtime* concern — it
/// is not persisted into artifacts; a loaded classifier starts from
/// [`ServingConfig::default`] and can be retuned per process with
/// [`TrainedClassifier::set_serving_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Worker threads for batch classification. `0` means "use available
    /// parallelism".
    pub threads: usize,
    /// Samples a worker claims per scheduling step. Small chunks balance
    /// load when executables differ wildly in size; larger chunks reduce
    /// scheduling overhead for uniform traffic.
    pub chunk: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk: 2,
        }
    }
}

impl ServingConfig {
    /// The equivalent low-level parallel-map configuration. (`hpcutil`
    /// clamps a zero chunk to 1 via `ParallelConfig::effective_chunk`.)
    pub fn parallel(self) -> ParallelConfig {
        ParallelConfig {
            threads: self.threads,
            chunk: self.chunk,
        }
    }
}

/// The classifier's verdict on one executable.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class name, or `"-1"` for unknown.
    pub label: String,
    /// Evaluation-space label: `0` = unknown, `1 + known_class_id` otherwise.
    pub eval_label: usize,
    /// Probability of the winning known class (before thresholding).
    pub confidence: f64,
    /// Full probability distribution over the known classes.
    pub proba: Vec<f64>,
}

impl Prediction {
    /// Whether the sample was routed to the `"-1"` unknown class.
    pub fn is_unknown(&self) -> bool {
        self.eval_label == UNKNOWN_LABEL
    }
}

/// A fitted classifier, ready to serve.
///
/// Owns everything prediction needs: the per-class reference hashes, the
/// tuned random forest, and the tuned confidence threshold. Create one with
/// [`FuzzyHashClassifier::fit`](crate::pipeline::FuzzyHashClassifier::fit),
/// or load a saved artifact with [`TrainedClassifier::load`].
#[derive(Debug, Clone)]
pub struct TrainedClassifier {
    pub(crate) reference: Arc<ReferenceSet>,
    pub(crate) backend: AnyBackend,
    pub(crate) forest: RandomForest,
    pub(crate) forest_params: RandomForestParams,
    pub(crate) confidence_threshold: f64,
    pub(crate) threshold_curve: Vec<ThresholdPoint>,
    pub(crate) seed: u64,
    pub(crate) serving: ServingConfig,
}

impl TrainedClassifier {
    /// Assemble a classifier from its parts (the fit path and the artifact
    /// decoder both end here).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        reference: Arc<ReferenceSet>,
        backend: AnyBackend,
        forest: RandomForest,
        forest_params: RandomForestParams,
        confidence_threshold: f64,
        threshold_curve: Vec<ThresholdPoint>,
        seed: u64,
        serving: ServingConfig,
    ) -> Self {
        Self {
            reference,
            backend,
            forest,
            forest_params,
            confidence_threshold,
            threshold_curve,
            seed,
            serving,
        }
    }

    /// Names of the known classes (the forest's label space).
    pub fn known_class_names(&self) -> &[String] {
        self.reference.class_names()
    }

    /// Number of known classes.
    pub fn n_known_classes(&self) -> usize {
        self.reference.n_classes()
    }

    /// The fuzzy-hash views this classifier was trained on.
    pub fn feature_kinds(&self) -> &[FeatureKind] {
        self.reference.kinds()
    }

    /// The tuned confidence threshold below which samples are labeled
    /// `"-1"` (unknown).
    pub fn confidence_threshold(&self) -> f64 {
        self.confidence_threshold
    }

    /// The forest parameters actually used (after grid search, if any).
    pub fn forest_params(&self) -> &RandomForestParams {
        &self.forest_params
    }

    /// The threshold sweep measured on the internal validation set during
    /// fitting (paper Figure 3).
    pub fn threshold_curve(&self) -> &[ThresholdPoint] {
        &self.threshold_curve
    }

    /// The root seed the classifier was fit with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The reference hash set the similarity features are computed against.
    pub fn reference(&self) -> &ReferenceSet {
        &self.reference
    }

    /// The reference set as a shared handle (the form
    /// [`ShardWorker`](crate::shardnet::ShardWorker) and
    /// [`RemoteBackend`](crate::shardnet::RemoteBackend) consume — a shard
    /// daemon serves the reference set of the artifact it loaded).
    pub fn reference_shared(&self) -> Arc<ReferenceSet> {
        Arc::clone(&self.reference)
    }

    /// Swap the reference set for an evolved one — the serving half of a
    /// delta update (`fhc-artifact apply`): the similarity backend is
    /// rebuilt over the new set while the fitted forest and tuned
    /// threshold carry over unchanged.
    ///
    /// Only geometry-preserving evolution qualifies: the class names (in
    /// order), column count, and feature kinds must all match the current
    /// reference set — i.e. an [`ReferenceSet::add_samples`]-style
    /// evolution. Adding, retiring, or reordering classes changes the
    /// label space and row geometry the forest was fitted against; that
    /// is a refit, and this refuses with an error saying so. On error the
    /// classifier is left unchanged.
    pub fn try_set_reference(&mut self, reference: Arc<ReferenceSet>) -> Result<(), FhcError> {
        if reference.class_names() != self.reference.class_names()
            || reference.n_columns() != self.reference.n_columns()
            || reference.kinds() != self.reference.kinds()
        {
            return Err(FhcError::Artifact(format!(
                "evolved reference set changes the fitted geometry \
                 ({} classes / {} columns -> {} classes / {} columns): \
                 refit required, the forest cannot consume the new rows",
                self.reference.n_classes(),
                self.reference.n_columns(),
                reference.n_classes(),
                reference.n_columns()
            )));
        }
        let backend = self.backend.config().try_build(Arc::clone(&reference))?;
        self.reference = reference;
        self.backend = backend;
        Ok(())
    }

    /// The serving parallelism configuration.
    pub fn serving_config(&self) -> ServingConfig {
        self.serving
    }

    /// Retune the serving parallelism (threads / chunking) in place.
    pub fn set_serving_config(&mut self, config: ServingConfig) {
        self.serving = config;
    }

    /// Builder-style variant of [`TrainedClassifier::set_serving_config`].
    pub fn with_serving_config(mut self, config: ServingConfig) -> Self {
        self.serving = config;
        self
    }

    /// The similarity backend currently scoring queries.
    pub fn backend(&self) -> &AnyBackend {
        &self.backend
    }

    /// The configuration of the current backend.
    pub fn backend_config(&self) -> BackendConfig {
        self.backend.config()
    }

    /// Swap the similarity backend in place. Backend choice is a runtime
    /// concern: every backend produces byte-identical scores, so this never
    /// changes predictions — only how (and how parallel, and on which
    /// machines) they are computed.
    ///
    /// Panics if a remote topology cannot be connected; use
    /// [`TrainedClassifier::try_set_backend`] to handle that case.
    pub fn set_backend(&mut self, config: BackendConfig) {
        self.backend = config.build(self.reference.clone());
    }

    /// Fallible twin of [`TrainedClassifier::set_backend`]: connecting a
    /// [`BackendConfig::Remote`] topology dials real sockets and can fail.
    /// On error the current backend is left untouched.
    pub fn try_set_backend(&mut self, config: BackendConfig) -> Result<(), FhcError> {
        self.backend = config.try_build(self.reference.clone())?;
        Ok(())
    }

    /// Builder-style variant of [`TrainedClassifier::set_backend`].
    pub fn with_backend(mut self, config: BackendConfig) -> Self {
        self.set_backend(config);
        self
    }

    /// Apply the runtime layers of a unified [`FhcConfig`] (serving
    /// parallelism and backend choice). The pipeline layer describes
    /// training and is ignored here.
    ///
    /// Panics if a remote backend cannot be connected; use
    /// [`TrainedClassifier::try_apply_config`] to handle that case.
    pub fn apply_config(&mut self, config: &FhcConfig) {
        self.serving = config.serving;
        self.set_backend(config.backend.clone());
    }

    /// Fallible twin of [`TrainedClassifier::apply_config`]. On error the
    /// classifier is left unchanged.
    pub fn try_apply_config(&mut self, config: &FhcConfig) -> Result<(), FhcError> {
        let backend = config.backend.try_build(self.reference.clone())?;
        self.serving = config.serving;
        self.backend = backend;
        Ok(())
    }

    /// Builder-style variant of [`TrainedClassifier::apply_config`].
    pub fn with_config(mut self, config: &FhcConfig) -> Self {
        self.apply_config(config);
        self
    }

    /// The fitted forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Importance of each fuzzy-hash view (paper Table 5).
    pub fn feature_importance(&self) -> Vec<FeatureImportance> {
        aggregate_importance(
            self.forest.feature_importances(),
            &self.reference.column_kinds(),
        )
    }

    /// Classify pre-extracted fuzzy-hash features.
    pub fn classify_features(&self, features: &SampleFeatures) -> Prediction {
        self.classify_prepared(&PreparedSampleFeatures::prepare(features))
    }

    /// Classify an already-prepared sample (for callers that also paid the
    /// preparation cost up front). The similarity row is computed by the
    /// configured [`SimilarityBackend`].
    pub fn classify_prepared(&self, prepared: &PreparedSampleFeatures) -> Prediction {
        self.predict_from_row(&self.backend.feature_vector_prepared(prepared))
    }

    /// Forest vote + threshold over a computed similarity row.
    fn predict_from_row(&self, row: &[f64]) -> Prediction {
        let proba = Model::predict_proba(&self.forest, row);
        let eval_label = apply_threshold(&proba, self.confidence_threshold);
        let confidence = proba.iter().cloned().fold(0.0f64, f64::max);
        let label = if eval_label == UNKNOWN_LABEL {
            "-1".to_string()
        } else {
            self.reference.class_names()[eval_label - 1].clone()
        };
        Prediction {
            label,
            eval_label,
            confidence,
            proba,
        }
    }

    /// Classify one executable from its raw bytes (hash, similarity row,
    /// forest vote, threshold — no retraining).
    pub fn classify(&self, bytes: &[u8]) -> Prediction {
        self.classify_features(&SampleFeatures::extract(bytes))
    }

    /// Classify a batch of named executables in parallel, preserving input
    /// order. This is the serving hot path: feature extraction and
    /// similarity scoring for each sample run on worker threads.
    pub fn classify_batch(&self, samples: &[(String, Vec<u8>)]) -> Vec<(String, Prediction)> {
        par_map_indexed(samples.len(), self.serving.parallel(), |i| {
            let (name, bytes) = &samples[i];
            (name.clone(), self.classify(bytes))
        })
    }

    /// Classify pre-extracted feature batches in parallel (for callers that
    /// already paid the hashing cost).
    pub fn classify_features_batch(&self, features: &[SampleFeatures]) -> Vec<Prediction> {
        par_map_indexed(features.len(), self.serving.parallel(), |i| {
            self.classify_features(&features[i])
        })
    }

    /// Fallible twin of [`TrainedClassifier::classify_prepared`], for
    /// backends that can fail at serving time (remote shard workers). A
    /// lost worker surfaces as [`FhcError::Net`] — never as a wrong or
    /// partial prediction. In-process backends cannot fail here.
    pub fn try_classify_prepared(
        &self,
        prepared: &PreparedSampleFeatures,
    ) -> Result<Prediction, FhcError> {
        let row = self.backend.try_feature_vector_prepared(prepared)?;
        Ok(self.predict_from_row(&row))
    }

    /// Fallible twin of [`TrainedClassifier::classify_features`].
    pub fn try_classify_features(&self, features: &SampleFeatures) -> Result<Prediction, FhcError> {
        self.try_classify_prepared(&PreparedSampleFeatures::prepare(features))
    }

    /// Fallible twin of [`TrainedClassifier::classify`].
    pub fn try_classify(&self, bytes: &[u8]) -> Result<Prediction, FhcError> {
        self.try_classify_features(&SampleFeatures::extract(bytes))
    }

    /// Fallible twin of [`TrainedClassifier::classify_batch`]: the whole
    /// batch either classifies (order preserved) or the first failure is
    /// returned. Per-sample work still runs on the serving worker threads.
    pub fn try_classify_batch(
        &self,
        samples: &[(String, Vec<u8>)],
    ) -> Result<Vec<(String, Prediction)>, FhcError> {
        if self.backend.scores_batches_remotely() {
            return self.try_classify_batch_remote(samples);
        }
        // Short-circuit on the first failure: once any sample errors (e.g.
        // a shard worker died or timed out), the remaining samples are
        // skipped instead of each paying the same failing fan-out — on a
        // large batch with a wedged worker that is the difference between
        // one I/O timeout and thousands.
        let aborted = std::sync::atomic::AtomicBool::new(false);
        let results = par_map_indexed(samples.len(), self.serving.parallel(), |i| {
            if aborted.load(std::sync::atomic::Ordering::Relaxed) {
                return None;
            }
            let (name, bytes) = &samples[i];
            let result = self.try_classify(bytes);
            if result.is_err() {
                aborted.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            Some(result.map(|prediction| (name.clone(), prediction)))
        });
        // A `None` (skipped) entry can only exist alongside the `Some(Err)`
        // that set the abort flag, so surfacing the first error covers it.
        let mut predictions = Vec::with_capacity(samples.len());
        let mut first_error = None;
        for result in results {
            match result {
                Some(Ok(prediction)) => predictions.push(prediction),
                Some(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                None => {}
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        assert_eq!(
            predictions.len(),
            samples.len(),
            "entries are only skipped after an error entry exists"
        );
        Ok(predictions)
    }

    /// [`TrainedClassifier::try_classify_batch`] for transport backends:
    /// hashing and preparation run locally on the serving workers, then the
    /// whole batch ships through the backend's batched wire path
    /// (`ScoreBatchRequest` frames, chunked to the frame budget) instead of
    /// paying a round-trip fan-out per sample. The forest vote over the
    /// returned rows is parallel again. Order is preserved; any transport
    /// failure fails the whole batch with the first typed error, matching
    /// the per-sample path's contract.
    fn try_classify_batch_remote(
        &self,
        samples: &[(String, Vec<u8>)],
    ) -> Result<Vec<(String, Prediction)>, FhcError> {
        let prepared = par_map_indexed(samples.len(), self.serving.parallel(), |i| {
            PreparedSampleFeatures::prepare(&SampleFeatures::extract(&samples[i].1))
        });
        let rows = self.backend.try_feature_rows_prepared(&prepared)?;
        Ok(par_map_indexed(rows.len(), self.serving.parallel(), |i| {
            (samples[i].0.clone(), self.predict_from_row(&rows[i]))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FuzzyHashClassifier, PipelineConfig};
    use corpus::{Catalog, CorpusBuilder};

    fn trained() -> (corpus::Corpus, TrainedClassifier) {
        let corpus = CorpusBuilder::new(3).build(&Catalog::paper().scaled(0.02));
        let config = FhcConfig::new().pipeline(PipelineConfig {
            seed: 3,
            forest: mlcore::forest::RandomForestParams {
                n_estimators: 20,
                ..Default::default()
            },
            ..Default::default()
        });
        let classifier = FuzzyHashClassifier::with_config(config)
            .fit(&corpus)
            .expect("fit succeeds");
        (corpus, classifier)
    }

    #[test]
    fn classify_agrees_with_classify_features_and_batch() {
        let (corpus, trained) = trained();
        let specs: Vec<_> = corpus.samples().iter().step_by(17).collect();
        let batch: Vec<(String, Vec<u8>)> = specs
            .iter()
            .map(|s| (s.install_path(), corpus.generate_bytes(s)))
            .collect();
        let batch_predictions = trained.classify_batch(&batch);
        assert_eq!(batch_predictions.len(), batch.len());
        for ((name, bytes), (batch_name, batch_pred)) in batch.iter().zip(&batch_predictions) {
            assert_eq!(name, batch_name);
            let single = trained.classify(bytes);
            assert_eq!(&single, batch_pred);
            let features = SampleFeatures::extract(bytes);
            assert_eq!(trained.classify_features(&features), single);
        }
    }

    #[test]
    fn predictions_are_well_formed() {
        let (corpus, trained) = trained();
        let spec = &corpus.samples()[0];
        let prediction = trained.classify(&corpus.generate_bytes(spec));
        assert_eq!(prediction.proba.len(), trained.n_known_classes());
        assert!((prediction.proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&prediction.confidence));
        if prediction.is_unknown() {
            assert_eq!(prediction.label, "-1");
            assert_eq!(prediction.eval_label, UNKNOWN_LABEL);
        } else {
            assert_eq!(
                prediction.label,
                trained.known_class_names()[prediction.eval_label - 1]
            );
            assert!(prediction.confidence >= trained.confidence_threshold());
        }
    }

    #[test]
    fn garbage_input_is_unknown() {
        let (_, trained) = trained();
        let prediction = trained.classify(b"#!/bin/sh\necho not an elf at all\n");
        // A shell script shares no symbols and virtually no content with any
        // HPC application class.
        assert!(prediction.is_unknown(), "got {prediction:?}");
    }

    #[test]
    fn serving_config_changes_parallelism_not_predictions() {
        let (corpus, trained) = trained();
        assert_eq!(trained.serving_config(), ServingConfig::default());
        let batch: Vec<(String, Vec<u8>)> = corpus
            .samples()
            .iter()
            .step_by(29)
            .map(|s| (s.install_path(), corpus.generate_bytes(s)))
            .collect();
        let default_predictions = trained.classify_batch(&batch);

        for config in [
            ServingConfig {
                threads: 1,
                chunk: 1,
            },
            ServingConfig {
                threads: 3,
                chunk: 64,
            },
            // A zero chunk must be tolerated (hpcutil's effective_chunk
            // clamps it to 1), not loop forever.
            ServingConfig {
                threads: 2,
                chunk: 0,
            },
        ] {
            let tuned = trained.clone().with_serving_config(config);
            assert_eq!(tuned.serving_config(), config);
            assert_eq!(
                tuned.classify_batch(&batch),
                default_predictions,
                "parallelism must never change predictions ({config:?})"
            );
        }

        let mut mutated = trained.clone();
        mutated.set_serving_config(ServingConfig {
            threads: 2,
            chunk: 8,
        });
        assert_eq!(mutated.serving_config().chunk, 8);
    }

    #[test]
    fn backend_swap_never_changes_predictions() {
        let (corpus, trained) = trained();
        assert_eq!(trained.backend_config(), BackendConfig::Indexed);
        let batch: Vec<(String, Vec<u8>)> = corpus
            .samples()
            .iter()
            .step_by(31)
            .map(|s| (s.install_path(), corpus.generate_bytes(s)))
            .collect();
        let expected = trained.classify_batch(&batch);
        for config in [
            BackendConfig::Scan,
            BackendConfig::Indexed,
            BackendConfig::Sharded { shards: 1 },
            BackendConfig::Sharded { shards: 3 },
            BackendConfig::Sharded { shards: 0 },
        ] {
            let swapped = trained.clone().with_backend(config.clone());
            assert_eq!(swapped.backend_config(), config);
            assert_eq!(
                swapped.classify_batch(&batch),
                expected,
                "backend choice must never change predictions ({config})"
            );
        }
    }

    #[test]
    fn classify_prepared_matches_classify_features() {
        let (corpus, trained) = trained();
        let features = SampleFeatures::extract(&corpus.generate_bytes(&corpus.samples()[2]));
        let prepared = PreparedSampleFeatures::prepare(&features);
        assert_eq!(
            trained.classify_prepared(&prepared),
            trained.classify_features(&features)
        );
    }

    #[test]
    fn apply_config_sets_the_runtime_layers() {
        let (_, trained) = trained();
        let config = FhcConfig::new()
            .serving(ServingConfig {
                threads: 2,
                chunk: 5,
            })
            .backend(BackendConfig::Sharded { shards: 2 });
        let tuned = trained.with_config(&config);
        assert_eq!(tuned.serving_config().chunk, 5);
        assert_eq!(tuned.backend_config(), BackendConfig::Sharded { shards: 2 });
    }

    #[test]
    fn metadata_accessors_are_consistent() {
        let (_, trained) = trained();
        assert_eq!(trained.seed(), 3);
        assert_eq!(trained.feature_kinds().len(), 3);
        assert!(trained.n_known_classes() > 0);
        assert_eq!(trained.known_class_names().len(), trained.n_known_classes());
        assert!(trained.forest().n_trees() > 0);
        let importance = trained.feature_importance();
        assert_eq!(importance.len(), 3);
        let total: f64 = importance.iter().map(|i| i.importance).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(trained
            .threshold_curve()
            .iter()
            .any(|p| (p.threshold - trained.confidence_threshold()).abs() < 1e-9));
    }
}
