//! Comparison baselines.
//!
//! * [`sha256`] + [`ExactHashBaseline`] — the cryptographic-hash approach the
//!   paper contrasts against (Section 1/2): exact hashes recognize repeated
//!   executions of the *identical* file but cannot match new versions of the
//!   same application, so on a test set of unseen versions it labels
//!   essentially everything unknown.
//! * k-nearest-neighbours and Gaussian naive Bayes on the same similarity
//!   feature matrix — the alternative models the paper defers to future work
//!   (Section 6). Both are driven through `mlcore`'s polymorphic
//!   [`Model`] trait, so adding another comparison model is one line in
//!   [`run_baselines`], not a new hand-rolled call site.

use crate::backend::SimilarityBackend;
use crate::config::FhcConfig;
use crate::error::FhcError;
use crate::features::SampleFeatures;
use crate::similarity::ReferenceSet;
use crate::split::two_phase_split;
use crate::threshold::{apply_threshold, known_to_eval, UNKNOWN_LABEL};
use corpus::Corpus;
use hpcutil::SeedSequence;
use mlcore::dataset::Dataset;
use mlcore::knn::{KNearestNeighbors, KnnParams};
use mlcore::metrics::{f1_score, Average};
use mlcore::model::Model;
use mlcore::naive_bayes::{GaussianNaiveBayes, GaussianNbParams};
use std::collections::HashMap;

pub mod sha256;

/// Exact-match baseline: a map from SHA-256 digest to class label.
#[derive(Debug, Clone, Default)]
pub struct ExactHashBaseline {
    by_digest: HashMap<[u8; 32], usize>,
}

impl ExactHashBaseline {
    /// Memorize the digests of the training executables.
    pub fn fit(training: &[(Vec<u8>, usize)]) -> Self {
        let mut by_digest = HashMap::with_capacity(training.len());
        for (bytes, label) in training {
            by_digest.insert(sha256::sha256(bytes), *label);
        }
        Self { by_digest }
    }

    /// Predict the evaluation-space label of an executable: the memorized
    /// class on an exact digest match, otherwise unknown.
    pub fn predict(&self, bytes: &[u8]) -> usize {
        match self.by_digest.get(&sha256::sha256(bytes)) {
            Some(&label) => known_to_eval(label),
            None => UNKNOWN_LABEL,
        }
    }

    /// Number of memorized digests.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// Whether no digests have been memorized.
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }
}

/// Scores of one baseline on the test set.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Baseline name.
    pub name: String,
    /// Micro-averaged F1.
    pub micro_f1: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Support-weighted F1.
    pub weighted_f1: f64,
}

/// Evaluate the exact-hash, k-NN, and naive-Bayes baselines on the same
/// two-phase split and similarity features the main pipeline uses.
///
/// `threshold` is the confidence threshold applied to the probabilistic
/// baselines (typically the one the main pipeline tuned).
pub fn run_baselines(
    corpus: &Corpus,
    features: &[SampleFeatures],
    config: &FhcConfig,
    threshold: f64,
) -> Result<Vec<BaselineResult>, FhcError> {
    let seeds = SeedSequence::new(config.pipeline.seed);
    let split = two_phase_split(corpus, config.pipeline.split, seeds.derive("split"))?;
    let known_class_names: Vec<String> = split
        .known_classes
        .iter()
        .map(|&c| corpus.class_names()[c].clone())
        .collect();
    let mut known_id = vec![usize::MAX; corpus.n_classes()];
    for (id, &class) in split.known_classes.iter().enumerate() {
        known_id[class] = id;
    }

    let train_features: Vec<SampleFeatures> =
        split.train.iter().map(|&i| features[i].clone()).collect();
    let train_labels: Vec<usize> = split
        .train
        .iter()
        .map(|&i| known_id[corpus.samples()[i].class_index])
        .collect();
    let reference = std::sync::Arc::new(ReferenceSet::new(
        known_class_names.clone(),
        &train_features,
        &train_labels,
        &config.pipeline.feature_kinds,
    ));
    let backend = config.backend.build(reference.clone());
    let x_train = backend.feature_matrix(&train_features, config.parallel);
    let train_ds = Dataset::from_rows(
        x_train,
        train_labels.clone(),
        reference.column_names(),
        known_class_names.clone(),
    )?;

    let test_features: Vec<SampleFeatures> =
        split.test.iter().map(|&i| features[i].clone()).collect();
    let x_test = backend.feature_matrix(&test_features, config.parallel);
    let y_true: Vec<usize> = split
        .test
        .iter()
        .map(|&i| {
            let class = corpus.samples()[i].class_index;
            if known_id[class] == usize::MAX {
                UNKNOWN_LABEL
            } else {
                known_to_eval(known_id[class])
            }
        })
        .collect();
    let n_eval_classes = 1 + known_class_names.len();
    let score = |name: &str, y_pred: &[usize]| BaselineResult {
        name: name.to_string(),
        micro_f1: f1_score(&y_true, y_pred, n_eval_classes, Average::Micro),
        macro_f1: f1_score(&y_true, y_pred, n_eval_classes, Average::Macro),
        weighted_f1: f1_score(&y_true, y_pred, n_eval_classes, Average::Weighted),
    };

    let mut results = Vec::new();

    // --- Exact cryptographic hash -----------------------------------------
    let training_bytes: Vec<(Vec<u8>, usize)> = split
        .train
        .iter()
        .map(|&i| {
            (
                corpus.generate_bytes(&corpus.samples()[i]),
                known_id[corpus.samples()[i].class_index],
            )
        })
        .collect();
    let exact = ExactHashBaseline::fit(&training_bytes);
    let y_exact: Vec<usize> = split
        .test
        .iter()
        .map(|&i| exact.predict(&corpus.generate_bytes(&corpus.samples()[i])))
        .collect();
    results.push(score("exact-sha256", &y_exact));

    // --- Probabilistic models through the polymorphic Model trait -----------
    // Fit, predict probabilities, and confidence-threshold each model via
    // one generic path; every model sees the same features and threshold.
    fn model_predictions<M: Model>(
        train_ds: &Dataset,
        params: &M::Params,
        seed: u64,
        x_test: &[Vec<f64>],
        threshold: f64,
    ) -> Result<Vec<usize>, FhcError> {
        let model = M::fit(train_ds, params, seed)?;
        let probas = model.predict_proba_batch(x_test);
        Ok(probas
            .iter()
            .map(|p| apply_threshold(p, threshold))
            .collect())
    }

    let model_seed = seeds.derive("baseline-models");
    let y_knn = model_predictions::<KNearestNeighbors>(
        &train_ds,
        &KnnParams::default(),
        model_seed,
        &x_test,
        threshold,
    )?;
    results.push(score("knn-5", &y_knn));

    let y_nb = model_predictions::<GaussianNaiveBayes>(
        &train_ds,
        &GaussianNbParams,
        model_seed,
        &x_test,
        threshold,
    )?;
    results.push(score("gaussian-nb", &y_nb));

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hash_matches_only_identical_bytes() {
        let training = vec![
            (b"file one contents".to_vec(), 0),
            (b"file two contents".to_vec(), 1),
        ];
        let baseline = ExactHashBaseline::fit(&training);
        assert_eq!(baseline.len(), 2);
        assert!(!baseline.is_empty());
        assert_eq!(baseline.predict(b"file one contents"), known_to_eval(0));
        assert_eq!(baseline.predict(b"file two contents"), known_to_eval(1));
        // A single changed byte breaks the match — the paper's core argument
        // for fuzzy hashes over cryptographic hashes.
        assert_eq!(baseline.predict(b"file one contentz"), UNKNOWN_LABEL);
    }

    #[test]
    fn empty_baseline_predicts_unknown() {
        let baseline = ExactHashBaseline::default();
        assert!(baseline.is_empty());
        assert_eq!(baseline.predict(b"anything"), UNKNOWN_LABEL);
    }
}
