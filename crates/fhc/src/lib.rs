//! # Fuzzy Hash Classifier
//!
//! A Rust implementation of the system described in *"Using Malware
//! Detection Techniques for HPC Application Classification"* (Jakobsche &
//! Ciorba): classify HPC application executables into application classes by
//! comparing SSDeep-style fuzzy hashes of three views of each executable —
//! the raw bytes, the printable strings, and the global symbols — and
//! training a Random Forest on the resulting similarity features. Samples
//! whose prediction confidence falls below a tuned threshold are labeled
//! `"-1"` (unknown), which is how the classifier flags software that does not
//! belong to any known application class.
//!
//! The crate ties together the workspace substrates:
//!
//! * [`features`] — extract the three fuzzy-hash features from executable
//!   bytes (using [`binary`] for parsing / `strings` / `nm` and [`ssdeep`]
//!   for hashing).
//! * [`similarity`] — the reference hash set and its precomputed
//!   block-size-bucketed similarity index.
//! * [`backend`] — the pluggable [`SimilarityBackend`] scoring strategies
//!   over that reference set: the unindexed scan oracle, the prepared
//!   index, and the class-sharded parallel index. All score-identical;
//!   chosen at runtime.
//! * [`config`] — the unified layered [`FhcConfig`]
//!   (`pipeline` + `parallel` + `serving` + `backend`) every entry point
//!   consumes.
//! * [`split`] — the paper's two-phase train/test split (80/20 class-level
//!   known/unknown split, then a stratified 60/40 sample split).
//! * [`threshold`] — confidence thresholding and the threshold sweep behind
//!   the paper's Figure 3.
//! * [`pipeline`] — the training half: feature extraction, grid search,
//!   threshold tuning, final training ([`FuzzyHashClassifier::fit`]), plus
//!   the fit + evaluate composition behind the paper's tables.
//! * [`serving`] — the prediction half: [`TrainedClassifier`] owns the
//!   reference hashes, tuned forest, and threshold, and classifies new
//!   executables (singly or in parallel batches) without retraining.
//! * [`artifact`] — versioned on-disk persistence for trained classifiers,
//!   so training cost is amortized across processes.
//! * [`shardnet`] — distributed shard serving: a checksummed wire protocol,
//!   the `fhc-shardd` worker daemon, and a
//!   [`shardnet::RemoteBackend`] that fans similarity
//!   scoring out across worker processes over persistent connections.
//! * [`experiments`] — one driver per table/figure of the paper.
//! * [`ablation`] and [`baselines`] — feature ablations and the
//!   cryptographic-hash / k-NN / naive-Bayes comparison models (all driven
//!   through `mlcore`'s polymorphic `Model` trait).
//!
//! # Quick start: train once, classify forever
//!
//! ```no_run
//! use corpus::{Catalog, CorpusBuilder};
//! use fhc::backend::BackendConfig;
//! use fhc::config::FhcConfig;
//! use fhc::pipeline::FuzzyHashClassifier;
//! use fhc::serving::TrainedClassifier;
//!
//! // One layered configuration: training behavior (`pipeline`), batch
//! // parallelism (`parallel`), serving parallelism (`serving`), and the
//! // similarity backend (`backend`).
//! let config = FhcConfig::new().seed(42);
//!
//! // Fit pays the training cost (split, grid search, threshold tuning,
//! // forest) exactly once.
//! let corpus = CorpusBuilder::new(42).build(&Catalog::paper().scaled(0.1));
//! let trained = FuzzyHashClassifier::with_config(config.clone())
//!     .fit(&corpus)
//!     .expect("training succeeds");
//!
//! // Classify new executables — no retraining, parallel over the batch.
//! let batch: Vec<(String, Vec<u8>)> = corpus
//!     .samples()
//!     .iter()
//!     .take(8)
//!     .map(|s| (s.install_path(), corpus.generate_bytes(s)))
//!     .collect();
//! for (name, prediction) in trained.classify_batch(&batch) {
//!     println!("{name}: {} (confidence {:.2})", prediction.label, prediction.confidence);
//! }
//!
//! // Persist the artifact; other processes load it and classify directly —
//! // under any backend they like (backend choice is runtime-only, never
//! // baked into the artifact).
//! trained.save("classifier.fhc").expect("save succeeds");
//! let restored = TrainedClassifier::load_with(
//!     "classifier.fhc",
//!     &config.backend(BackendConfig::Sharded { shards: 4 }),
//! )
//! .expect("load succeeds");
//! assert_eq!(restored.known_class_names(), trained.known_class_names());
//! ```
//!
//! For the paper's evaluation (train *and* score on the held-out test
//! split), use [`FuzzyHashClassifier::run`], which composes `fit` with the
//! test-set evaluation:
//!
//! ```no_run
//! # use corpus::{Catalog, CorpusBuilder};
//! # use fhc::config::FhcConfig;
//! # use fhc::pipeline::FuzzyHashClassifier;
//! let corpus = CorpusBuilder::new(42).build(&Catalog::paper().scaled(0.1));
//! let outcome = FuzzyHashClassifier::with_config(FhcConfig::new().seed(42))
//!     .run(&corpus)
//!     .expect("pipeline runs");
//! println!("{}", outcome.report.render());
//! println!("macro f1 = {:.2}", outcome.report.macro_avg().f1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod artifact;
pub mod backend;
pub mod baselines;
#[cfg(feature = "failpoints")]
pub mod chaos;
pub mod config;
pub mod error;
pub mod experiments;
pub mod features;
pub mod pipeline;
pub mod serving;
pub mod shardnet;
pub mod similarity;
pub mod split;
pub mod threshold;

pub use backend::{
    AnyBackend, BackendConfig, IndexedBackend, ScanBackend, ShardedBackend, SimilarityBackend,
};
pub use config::FhcConfig;
pub use error::FhcError;
pub use features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
pub use pipeline::{FitOutcome, FuzzyHashClassifier, PipelineConfig, PipelineOutcome};
pub use serving::{Prediction, ServingConfig, TrainedClassifier};
pub use shardnet::{Endpoint, NetError, RemoteBackend, ShardWorker};
