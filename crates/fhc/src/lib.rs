//! # Fuzzy Hash Classifier
//!
//! A Rust implementation of the system described in *"Using Malware
//! Detection Techniques for HPC Application Classification"* (Jakobsche &
//! Ciorba): classify HPC application executables into application classes by
//! comparing SSDeep-style fuzzy hashes of three views of each executable —
//! the raw bytes, the printable strings, and the global symbols — and
//! training a Random Forest on the resulting similarity features. Samples
//! whose prediction confidence falls below a tuned threshold are labeled
//! `"-1"` (unknown), which is how the classifier flags software that does not
//! belong to any known application class.
//!
//! The crate ties together the workspace substrates:
//!
//! * [`features`] — extract the three fuzzy-hash features from executable
//!   bytes (using [`binary`] for parsing / `strings` / `nm` and [`ssdeep`]
//!   for hashing).
//! * [`similarity`] — turn per-sample hashes into the per-class
//!   max-similarity feature matrix the forest consumes.
//! * [`split`] — the paper's two-phase train/test split (80/20 class-level
//!   known/unknown split, then a stratified 60/40 sample split).
//! * [`threshold`] — confidence thresholding and the threshold sweep behind
//!   the paper's Figure 3.
//! * [`pipeline`] — the end-to-end classifier: feature extraction, grid
//!   search, threshold tuning, final training, prediction, evaluation.
//! * [`experiments`] — one driver per table/figure of the paper.
//! * [`ablation`] and [`baselines`] — feature ablations and the
//!   cryptographic-hash / k-NN / naive-Bayes comparison models.
//!
//! # Quick start
//!
//! ```no_run
//! use corpus::{Catalog, CorpusBuilder};
//! use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
//!
//! let corpus = CorpusBuilder::new(42).build(&Catalog::paper().scaled(0.1));
//! let outcome = FuzzyHashClassifier::new(PipelineConfig::default())
//!     .run(&corpus)
//!     .expect("pipeline runs");
//! println!("{}", outcome.report.render());
//! println!("macro f1 = {:.2}", outcome.report.macro_avg().f1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baselines;
pub mod error;
pub mod experiments;
pub mod features;
pub mod pipeline;
pub mod similarity;
pub mod split;
pub mod threshold;

pub use error::FhcError;
pub use features::{FeatureKind, SampleFeatures};
pub use pipeline::{FuzzyHashClassifier, PipelineConfig, PipelineOutcome};
