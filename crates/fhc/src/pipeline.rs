//! The training half of the Fuzzy Hash Classifier: fit, then evaluate.
//!
//! Mirrors the paper's methodology section:
//!
//! 1. extract the three SSDeep features of every sample,
//! 2. split classes 80/20 into known/unknown and known-class samples 60/40
//!    into train/test (the two-phase split),
//! 3. build the per-class max-similarity feature matrix against the
//!    training samples,
//! 4. tune the Random Forest hyper-parameters and the confidence threshold
//!    by grid search *within the training set* (holding out part of the
//!    known classes as pseudo-unknown for the threshold sweep),
//! 5. train the final forest, predict the test set, route low-confidence
//!    predictions to the `"-1"` unknown class,
//! 6. report per-class precision / recall / F1 plus micro / macro /
//!    weighted averages, and the per-feature importances.
//!
//! Steps 1–5a (everything up to and including training the final forest)
//! are [`FuzzyHashClassifier::fit`], which returns a reusable
//! [`TrainedClassifier`]; the test-set prediction and report are
//! [`FuzzyHashClassifier::evaluate_with_features`]. The original
//! [`FuzzyHashClassifier::run`] remains as the thin fit + evaluate
//! composition the experiment drivers use.

use crate::backend::SimilarityBackend;
use crate::config::FhcConfig;
use crate::error::FhcError;
use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use crate::serving::TrainedClassifier;
use crate::similarity::{CandidateCache, ReferenceSet};
use crate::split::{two_phase_split, SplitConfig, TwoPhaseSplit};
use crate::threshold::{
    apply_threshold_batch, best_threshold, default_threshold_grid, known_to_eval, sweep_thresholds,
    ThresholdPoint, UNKNOWN_LABEL,
};
use corpus::Corpus;
use hpcutil::{par_map_indexed, SeedSequence};
use mlcore::dataset::Dataset;
use mlcore::forest::{RandomForest, RandomForestParams};
use mlcore::gridsearch::{GridSearch, ParamGrid};
use mlcore::model::Model;
use mlcore::report::ClassificationReport;
use mlcore::split::{split_groups, stratified_split};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Root seed controlling the split, the forest, and the grid search.
    pub seed: u64,
    /// Train/test split fractions (defaults follow the paper: 20% unknown
    /// classes, 40% of known-class samples for testing).
    pub split: SplitConfig,
    /// Forest parameters used when no grid is given (and as the base for the
    /// grid).
    pub forest: RandomForestParams,
    /// Optional hyper-parameter grid evaluated by cross-validation within
    /// the training set.
    pub grid: Option<ParamGrid>,
    /// Cross-validation folds for the grid search.
    pub grid_folds: usize,
    /// Candidate confidence thresholds (paper Figure 3 sweeps these).
    pub thresholds: Vec<f64>,
    /// Which fuzzy-hash views to use (ablations restrict this).
    pub feature_kinds: Vec<FeatureKind>,
    /// Fraction of known classes held out as pseudo-unknown while tuning the
    /// threshold inside the training set.
    pub inner_unknown_fraction: f64,
    /// Fraction of inner-known training samples used to validate the
    /// threshold.
    pub inner_validation_fraction: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            split: SplitConfig::default(),
            forest: RandomForestParams {
                n_estimators: 80,
                ..Default::default()
            },
            grid: None,
            grid_folds: 3,
            thresholds: default_threshold_grid(),
            feature_kinds: FeatureKind::ALL.to_vec(),
            inner_unknown_fraction: 0.2,
            inner_validation_fraction: 0.4,
        }
    }
}

/// Aggregated importance of one fuzzy-hash view (paper Table 5).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// The fuzzy-hash view.
    pub kind: FeatureKind,
    /// Normalized importance (all views sum to 1).
    pub importance: f64,
}

/// Everything the pipeline produces for one run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Per-class and averaged precision / recall / F1 (paper Table 4).
    pub report: ClassificationReport,
    /// Evaluation label space: index 0 is `"-1"`, the rest are known classes.
    pub eval_class_names: Vec<String>,
    /// True evaluation labels of the test samples.
    pub y_true: Vec<usize>,
    /// Predicted evaluation labels of the test samples.
    pub y_pred: Vec<usize>,
    /// The tuned confidence threshold.
    pub confidence_threshold: f64,
    /// The threshold sweep measured on the internal validation set
    /// (paper Figure 3).
    pub threshold_curve: Vec<ThresholdPoint>,
    /// Importance of each fuzzy-hash view (paper Table 5).
    pub feature_importance: Vec<FeatureImportance>,
    /// Names of the known classes (the forest's label space).
    pub known_class_names: Vec<String>,
    /// Names of the unknown classes (paper Table 3).
    pub unknown_class_names: Vec<String>,
    /// The forest parameters actually used (after grid search, if any).
    pub forest_params: RandomForestParams,
    /// The two-phase split that produced the train/test sets.
    pub split: TwoPhaseSplit,
    /// Number of training samples.
    pub n_train: usize,
    /// Number of test samples.
    pub n_test: usize,
    /// Number of test samples belonging to unknown classes.
    pub n_unknown_test: usize,
}

/// Everything training produces: the reusable serving artifact plus the
/// split bookkeeping evaluation needs.
#[derive(Debug, Clone)]
pub struct FitOutcome {
    /// The fitted classifier (reference set + tuned forest + threshold).
    pub classifier: TrainedClassifier,
    /// The two-phase split that produced the training set.
    pub split: TwoPhaseSplit,
    /// Names of the unknown classes held out of training (paper Table 3).
    pub unknown_class_names: Vec<String>,
}

/// The end-to-end classifier.
#[derive(Debug, Clone)]
pub struct FuzzyHashClassifier {
    config: FhcConfig,
}

impl FuzzyHashClassifier {
    /// Create a classifier from the unified layered configuration
    /// ([`FhcConfig`]: pipeline + parallel + serving + backend).
    pub fn with_config(config: FhcConfig) -> Self {
        Self { config }
    }

    /// Create a classifier from a bare pipeline configuration, with default
    /// runtime layers.
    #[deprecated(
        since = "0.2.0",
        note = "use FuzzyHashClassifier::with_config; PipelineConfig is now the \
                `pipeline` layer of the unified FhcConfig (FhcConfig::from(pipeline) upgrades one)"
    )]
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_config(FhcConfig::from(config))
    }

    /// The full layered configuration in use.
    pub fn config(&self) -> &FhcConfig {
        &self.config
    }

    /// The training (pipeline) layer of the configuration.
    pub fn pipeline_config(&self) -> &PipelineConfig {
        &self.config.pipeline
    }

    /// Extract the fuzzy-hash features of every sample of `corpus`
    /// (in parallel per the config's `parallel` layer, generating each
    /// executable's bytes on demand).
    pub fn extract_features(&self, corpus: &Corpus) -> Vec<SampleFeatures> {
        par_map_indexed(corpus.n_samples(), self.config.parallel, |i| {
            let bytes = corpus.generate_bytes(&corpus.samples()[i]);
            SampleFeatures::extract(&bytes)
        })
    }

    /// Train once on `corpus` and return the reusable serving artifact.
    ///
    /// This pays the full training cost — feature extraction, the two-phase
    /// split, grid search, threshold tuning, forest training — exactly once;
    /// the returned [`TrainedClassifier`] then classifies arbitrarily many
    /// new executables (and can be saved to disk) without retraining.
    pub fn fit(&self, corpus: &Corpus) -> Result<TrainedClassifier, FhcError> {
        let features = self.extract_features(corpus);
        Ok(self.fit_with_features(corpus, &features)?.classifier)
    }

    /// Run the full pipeline on `corpus`: fit, then evaluate on the test
    /// split.
    pub fn run(&self, corpus: &Corpus) -> Result<PipelineOutcome, FhcError> {
        let features = self.extract_features(corpus);
        self.run_with_features(corpus, &features)
    }

    /// Run the pipeline on pre-extracted features (lets experiments reuse the
    /// expensive feature extraction across runs, e.g. for ablations). A thin
    /// composition of [`FuzzyHashClassifier::fit_with_features`] and
    /// [`FuzzyHashClassifier::evaluate_with_features`].
    pub fn run_with_features(
        &self,
        corpus: &Corpus,
        features: &[SampleFeatures],
    ) -> Result<PipelineOutcome, FhcError> {
        let fit = self.fit_with_features(corpus, features)?;
        self.evaluate_with_features(corpus, features, &fit)
    }

    /// Train on pre-extracted features, returning the serving artifact plus
    /// the split bookkeeping needed to evaluate it.
    pub fn fit_with_features(
        &self,
        corpus: &Corpus,
        features: &[SampleFeatures],
    ) -> Result<FitOutcome, FhcError> {
        if features.len() != corpus.n_samples() {
            return Err(FhcError::InvalidConfig(
                "features must cover every corpus sample",
            ));
        }
        let pipeline = &self.config.pipeline;
        if pipeline.feature_kinds.is_empty() {
            return Err(FhcError::InvalidConfig(
                "at least one feature kind is required",
            ));
        }
        if pipeline.thresholds.is_empty() {
            return Err(FhcError::InvalidConfig("threshold grid must not be empty"));
        }
        let seeds = SeedSequence::new(pipeline.seed);

        // ---- Phase 1+2 split ------------------------------------------------
        let split = two_phase_split(corpus, pipeline.split, seeds.derive("split"))?;
        let known_class_names: Vec<String> = split
            .known_classes
            .iter()
            .map(|&c| corpus.class_names()[c].clone())
            .collect();
        let unknown_class_names: Vec<String> = split
            .unknown_classes
            .iter()
            .map(|&c| corpus.class_names()[c].clone())
            .collect();
        // Map corpus class index -> known-class id (forest label space).
        let mut known_id = vec![usize::MAX; corpus.n_classes()];
        for (id, &class) in split.known_classes.iter().enumerate() {
            known_id[class] = id;
        }

        // Prepare each *training* sample's query hashes exactly once; the
        // training matrix and every threshold-tuning inner fit below reuse
        // this batch. Test-split samples are deliberately skipped — fit
        // never scores them, and evaluation prepares its rows on demand.
        let train_prepared: Vec<PreparedSampleFeatures> =
            par_map_indexed(split.train.len(), self.config.parallel, |j| {
                PreparedSampleFeatures::prepare(&features[split.train[j]])
            });
        // Corpus sample index -> prepared training sample (for the
        // threshold-tuning subsets, which are drawn from `split.train`).
        let mut prepared_by_sample: Vec<Option<&PreparedSampleFeatures>> =
            vec![None; features.len()];
        for (j, &i) in split.train.iter().enumerate() {
            prepared_by_sample[i] = Some(&train_prepared[j]);
        }
        let train_labels: Vec<usize> = split
            .train
            .iter()
            .map(|&i| known_id[corpus.samples()[i].class_index])
            .collect();

        // ---- Similarity feature matrix --------------------------------------
        let reference = Arc::new(ReferenceSet::from_prepared(
            known_class_names.clone(),
            &train_prepared,
            &train_labels,
            &pipeline.feature_kinds,
        ));
        let backend = self.config.backend.build(reference.clone());
        // The training matrix goes through the local indexed walk — every
        // backend produces byte-identical rows (the workspace equivalence
        // suites pin that invariant), and walking locally captures the
        // per-query candidate lists so threshold tuning below replays them
        // against its inner reference subsets instead of re-walking.
        let (x_train, candidate_cache) =
            reference.feature_matrix_caching(&train_prepared, self.config.parallel);
        let train_ds = Dataset::from_rows(
            x_train,
            train_labels.clone(),
            reference.column_names(),
            known_class_names.clone(),
        )?;

        // ---- Hyper-parameter grid search (within the training set) ----------
        let forest_params = match &pipeline.grid {
            Some(grid) => {
                let search = GridSearch {
                    n_folds: pipeline.grid_folds,
                    base: pipeline.forest.clone(),
                };
                search.best_params(&train_ds, grid, seeds.derive("grid"))?
            }
            None => pipeline.forest.clone(),
        };

        // ---- Confidence-threshold tuning (within the training set) ----------
        let (threshold_curve, confidence_threshold) = self.tune_threshold(
            corpus,
            &split,
            &prepared_by_sample,
            &known_id,
            &forest_params,
            &seeds,
            &reference,
            &candidate_cache,
        )?;

        // ---- Final model ------------------------------------------------------
        let forest = RandomForest::fit(&train_ds, &forest_params, seeds.derive("forest"))?;

        Ok(FitOutcome {
            classifier: TrainedClassifier::from_parts(
                reference,
                backend,
                forest,
                forest_params,
                confidence_threshold,
                threshold_curve,
                pipeline.seed,
                self.config.serving,
            ),
            split,
            unknown_class_names,
        })
    }

    /// Evaluate a fitted classifier on the test half of its two-phase split,
    /// producing the paper's report (Tables 3–5, Figure 3).
    pub fn evaluate_with_features(
        &self,
        corpus: &Corpus,
        features: &[SampleFeatures],
        fit: &FitOutcome,
    ) -> Result<PipelineOutcome, FhcError> {
        if features.len() != corpus.n_samples() {
            return Err(FhcError::InvalidConfig(
                "features must cover every corpus sample",
            ));
        }
        let classifier = &fit.classifier;
        let split = &fit.split;
        let known_class_names = classifier.known_class_names().to_vec();
        let mut known_id = vec![usize::MAX; corpus.n_classes()];
        for (id, &class) in split.known_classes.iter().enumerate() {
            known_id[class] = id;
        }

        // ---- Test-set prediction ----------------------------------------------
        let test_features: Vec<SampleFeatures> =
            split.test.iter().map(|&i| features[i].clone()).collect();
        let x_test = classifier
            .backend()
            .feature_matrix(&test_features, self.config.parallel);
        let probas = Model::predict_proba_batch(classifier.forest(), &x_test);
        let y_pred = apply_threshold_batch(&probas, classifier.confidence_threshold());
        let y_true: Vec<usize> = split
            .test
            .iter()
            .map(|&i| {
                let class = corpus.samples()[i].class_index;
                if known_id[class] == usize::MAX {
                    UNKNOWN_LABEL
                } else {
                    known_to_eval(known_id[class])
                }
            })
            .collect();

        // ---- Report and feature importance --------------------------------------
        let mut eval_class_names = vec!["-1".to_string()];
        eval_class_names.extend(known_class_names.iter().cloned());
        let report = ClassificationReport::compute(&y_true, &y_pred, &eval_class_names);

        Ok(PipelineOutcome {
            report,
            eval_class_names,
            y_true,
            y_pred,
            confidence_threshold: classifier.confidence_threshold(),
            threshold_curve: classifier.threshold_curve().to_vec(),
            feature_importance: classifier.feature_importance(),
            known_class_names,
            unknown_class_names: fit.unknown_class_names.clone(),
            forest_params: classifier.forest_params().clone(),
            n_train: split.train.len(),
            n_test: split.test.len(),
            n_unknown_test: split.n_unknown_test_samples(corpus),
            split: split.clone(),
        })
    }

    /// Cheaply re-tune the confidence threshold of an existing fit — the
    /// companion of [`ReferenceSet::add_samples`]-style evolution, where
    /// similarity maxima move but the column geometry (and therefore the
    /// forest) is unchanged. Re-runs *only* the inner threshold fold over
    /// the fit's training split: no grid search, no final-forest refit, and
    /// one cached candidate walk feeds every inner matrix by projection.
    /// Writes the new curve and threshold into `fit.classifier` and returns
    /// the threshold.
    ///
    /// On an unchanged corpus this reproduces the fit's own tuning
    /// byte-identically (the pipeline suite asserts it), so it is safe to
    /// call speculatively.
    pub fn retune_threshold(
        &self,
        corpus: &Corpus,
        features: &[SampleFeatures],
        fit: &mut FitOutcome,
    ) -> Result<f64, FhcError> {
        if features.len() != corpus.n_samples() {
            return Err(FhcError::InvalidConfig(
                "features must cover every corpus sample",
            ));
        }
        let pipeline = &self.config.pipeline;
        if pipeline.thresholds.is_empty() {
            return Err(FhcError::InvalidConfig("threshold grid must not be empty"));
        }
        let seeds = SeedSequence::new(pipeline.seed);
        let split = fit.split.clone();
        let forest_params = fit.classifier.forest_params().clone();
        let mut known_id = vec![usize::MAX; corpus.n_classes()];
        for (id, &class) in split.known_classes.iter().enumerate() {
            known_id[class] = id;
        }
        let known_class_names: Vec<String> = split
            .known_classes
            .iter()
            .map(|&c| corpus.class_names()[c].clone())
            .collect();
        let train_prepared: Vec<PreparedSampleFeatures> =
            par_map_indexed(split.train.len(), self.config.parallel, |j| {
                PreparedSampleFeatures::prepare(&features[split.train[j]])
            });
        let mut prepared_by_sample: Vec<Option<&PreparedSampleFeatures>> =
            vec![None; features.len()];
        for (j, &i) in split.train.iter().enumerate() {
            prepared_by_sample[i] = Some(&train_prepared[j]);
        }
        let train_labels: Vec<usize> = split
            .train
            .iter()
            .map(|&i| known_id[corpus.samples()[i].class_index])
            .collect();
        let reference = ReferenceSet::from_prepared(
            known_class_names,
            &train_prepared,
            &train_labels,
            &pipeline.feature_kinds,
        );
        let cache = reference.candidate_cache(&train_prepared, self.config.parallel);
        let (curve, threshold) = self.tune_threshold(
            corpus,
            &split,
            &prepared_by_sample,
            &known_id,
            &forest_params,
            &seeds,
            &reference,
            &cache,
        )?;
        fit.classifier.confidence_threshold = threshold;
        fit.classifier.threshold_curve = curve;
        Ok(threshold)
    }

    /// Tune the confidence threshold inside the training set by holding out
    /// part of the known classes as pseudo-unknown.
    ///
    /// `prepared` maps corpus sample index -> the prepared query hashes
    /// computed once by [`FuzzyHashClassifier::fit_with_features`]
    /// (`Some` for every training sample); the inner fits reuse that batch
    /// instead of re-preparing their query rows. `reference` is the
    /// full-train reference set and `cache` the candidate lists captured by
    /// one walk of the training batch against it (aligned with
    /// `split.train`); the inner matrices are projections of that walk, so
    /// no fold re-walks the gram index.
    #[allow(clippy::too_many_arguments)]
    fn tune_threshold(
        &self,
        corpus: &Corpus,
        split: &TwoPhaseSplit,
        prepared: &[Option<&PreparedSampleFeatures>],
        known_id: &[usize],
        forest_params: &RandomForestParams,
        seeds: &SeedSequence,
        reference: &ReferenceSet,
        cache: &CandidateCache,
    ) -> Result<(Vec<ThresholdPoint>, f64), FhcError> {
        let pipeline = &self.config.pipeline;
        let n_known = split.known_classes.len();
        // Hold out a fraction of the known classes as pseudo-unknown.
        let (inner_known, pseudo_unknown) = split_groups(
            n_known,
            pipeline.inner_unknown_fraction,
            seeds.derive("inner-classes"),
        );
        let mut inner_known = inner_known;
        inner_known.sort_unstable();
        let mut pseudo_unknown = pseudo_unknown;
        pseudo_unknown.sort_unstable();
        // Map known-class id -> inner-known id.
        let mut inner_id = vec![usize::MAX; n_known];
        for (id, &k) in inner_known.iter().enumerate() {
            inner_id[k] = id;
        }

        // Training samples belonging to inner-known classes get a stratified
        // split into inner-train and inner-validation; pseudo-unknown
        // training samples all go to inner-validation.
        let mut inner_known_samples: Vec<usize> = Vec::new();
        let mut pseudo_unknown_samples: Vec<usize> = Vec::new();
        for &sample in &split.train {
            let k = known_id[corpus.samples()[sample].class_index];
            if inner_id[k] == usize::MAX {
                pseudo_unknown_samples.push(sample);
            } else {
                inner_known_samples.push(sample);
            }
        }
        if inner_known_samples.is_empty() {
            return Err(FhcError::CorpusTooSmall(
                "no inner-known training samples for threshold tuning".to_string(),
            ));
        }
        let inner_labels: Vec<usize> = inner_known_samples
            .iter()
            .map(|&i| inner_id[known_id[corpus.samples()[i].class_index]])
            .collect();
        let inner_split = stratified_split(
            &inner_labels,
            pipeline.inner_validation_fraction,
            seeds.derive("inner-split"),
        )?;

        let inner_train_samples: Vec<usize> = inner_split
            .train
            .iter()
            .map(|&i| inner_known_samples[i])
            .collect();
        let mut inner_val_samples: Vec<usize> = inner_split
            .test
            .iter()
            .map(|&i| inner_known_samples[i])
            .collect();
        inner_val_samples.extend_from_slice(&pseudo_unknown_samples);

        let inner_train_prepared: Vec<PreparedSampleFeatures> = inner_train_samples
            .iter()
            .map(|&i| prepared[i].expect("training sample is prepared").clone())
            .collect();
        let inner_train_labels: Vec<usize> = inner_train_samples
            .iter()
            .map(|&i| inner_id[known_id[corpus.samples()[i].class_index]])
            .collect();
        let inner_class_names: Vec<String> = inner_known
            .iter()
            .map(|&k| corpus.class_names()[split.known_classes[k]].clone())
            .collect();

        let inner_reference = ReferenceSet::from_prepared(
            inner_class_names.clone(),
            &inner_train_prepared,
            &inner_train_labels,
            &pipeline.feature_kinds,
        );

        // Both inner matrices are projections of the one cached candidate
        // walk over the full-train reference: the walk's `(query, kind)`
        // candidate lists are mapped onto the inner reference's coordinates
        // and re-scored there, byte-identical to walking the inner gram
        // index from scratch (candidate surfacing is a pairwise predicate).
        // Corpus sample index -> position in `split.train` (= cache row).
        let mut train_pos = vec![usize::MAX; prepared.len()];
        for (j, &i) in split.train.iter().enumerate() {
            train_pos[i] = j;
        }
        // Position in `split.train` -> the sample's (class, within-class)
        // coordinates in the full-train reference, mirroring the grouping
        // order of `ReferenceSet::from_prepared`.
        let mut full_counts = vec![0u32; n_known];
        let full_coord: Vec<(u32, u32)> = split
            .train
            .iter()
            .map(|&i| {
                let k = known_id[corpus.samples()[i].class_index];
                let s = full_counts[k];
                full_counts[k] += 1;
                (k as u32, s)
            })
            .collect();
        // Full-train (class, sample) -> inner-reference (class, sample),
        // for the samples the inner reference keeps.
        let mut inner_counts = vec![0u32; inner_known.len()];
        let mut inner_of_full: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
        for &i in &inner_train_samples {
            let (k, s_full) = full_coord[train_pos[i]];
            let ik = inner_id[k as usize] as u32;
            let s_inner = inner_counts[ik as usize];
            inner_counts[ik as usize] += 1;
            inner_of_full.insert((k, s_full), (ik, s_inner));
        }
        let project_rows = |samples: &[usize]| -> Vec<Vec<f64>> {
            par_map_indexed(samples.len(), self.config.parallel, |idx| {
                let i = samples[idx];
                let query = prepared[i].expect("training sample is prepared");
                let candidates =
                    reference.project_candidates(cache, train_pos[i], &inner_reference, |c, s| {
                        inner_of_full.get(&(c, s)).copied()
                    });
                inner_reference.feature_vector_from_candidates(query, &candidates)
            })
        };

        let x_inner_train = project_rows(&inner_train_samples);
        let inner_ds = Dataset::from_rows(
            x_inner_train,
            inner_train_labels,
            inner_reference.column_names(),
            inner_class_names,
        )?;
        let inner_forest =
            RandomForest::fit(&inner_ds, forest_params, seeds.derive("inner-forest"))?;

        let x_val = project_rows(&inner_val_samples);
        let probas = inner_forest.predict_proba_batch(&x_val);
        let y_val: Vec<usize> = inner_val_samples
            .iter()
            .map(|&i| {
                let k = known_id[corpus.samples()[i].class_index];
                if inner_id[k] == usize::MAX {
                    UNKNOWN_LABEL
                } else {
                    known_to_eval(inner_id[k])
                }
            })
            .collect();
        let n_eval_classes = 1 + inner_reference.n_classes();
        let curve = sweep_thresholds(&y_val, &probas, n_eval_classes, &pipeline.thresholds);
        let best = best_threshold(&curve).unwrap_or(0.0);
        Ok((curve, best))
    }
}

/// Aggregate per-column forest importances into one number per fuzzy-hash
/// view and normalize them to sum to 1 (the paper's Table 5 normalization).
pub fn aggregate_importance(
    column_importances: &[f64],
    column_kinds: &[FeatureKind],
) -> Vec<FeatureImportance> {
    let mut totals: Vec<(FeatureKind, f64)> = Vec::new();
    for (&imp, &kind) in column_importances.iter().zip(column_kinds) {
        match totals.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, total)) => *total += imp,
            None => totals.push((kind, imp)),
        }
    }
    let sum: f64 = totals.iter().map(|(_, v)| v).sum();
    totals
        .into_iter()
        .map(|(kind, v)| FeatureImportance {
            kind,
            importance: if sum > 0.0 { v / sum } else { 0.0 },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_importance_normalizes_per_kind() {
        let importances = vec![0.1, 0.1, 0.2, 0.2, 0.2, 0.2];
        let kinds = vec![
            FeatureKind::File,
            FeatureKind::File,
            FeatureKind::Strings,
            FeatureKind::Strings,
            FeatureKind::Symbols,
            FeatureKind::Symbols,
        ];
        let agg = aggregate_importance(&importances, &kinds);
        assert_eq!(agg.len(), 3);
        let total: f64 = agg.iter().map(|a| a.importance).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let file = agg.iter().find(|a| a.kind == FeatureKind::File).unwrap();
        assert!((file.importance - 0.2).abs() < 1e-12);
    }

    #[test]
    fn aggregate_importance_of_zeros_is_zero() {
        let agg = aggregate_importance(&[0.0, 0.0], &[FeatureKind::File, FeatureKind::Symbols]);
        assert!(agg.iter().all(|a| a.importance == 0.0));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.feature_kinds.len(), 3);
        assert!(!cfg.thresholds.is_empty());
        assert!(cfg.inner_unknown_fraction > 0.0 && cfg.inner_unknown_fraction < 1.0);
        assert!(cfg.forest.n_estimators > 0);
    }
}
