//! Experiment drivers: one function per table / figure of the paper.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`table1_velvet_versions`] | Table 1 — versions and executables of Velvet |
//! | [`figure2_sample_distribution`] | Figure 2 — samples per class |
//! | [`table2_hash_similarity_example`] | Table 2 — fuzzy-hash comparison of two versions |
//! | [`table3_unknown_classes`] | Table 3 — classes assigned to the unknown split |
//! | [`table4_classification_report`] | Table 4 — per-class precision / recall / F1 |
//! | [`table5_feature_importance`] | Table 5 — normalized feature importance |
//! | [`figure3_threshold_curve`] | Figure 3 — F1 versus confidence threshold |
//! | [`ablation_table`] | §5 feature-importance discussion (E8) |
//! | [`baseline_table`] | §1/§2 crypto-hash limitation, §6 future-work models (E9) |
//!
//! Each driver returns a plain-text rendering; the `experiments` binary and
//! `EXPERIMENTS.md` are produced from these.

use crate::ablation::AblationResult;
use crate::baselines::BaselineResult;
use crate::features::{FeatureKind, SampleFeatures};
use crate::pipeline::PipelineOutcome;
use corpus::stats::{sample_distribution_table, version_table};
use corpus::Corpus;
use hpcutil::table::{Align, TextTable};
use ssdeep::compare;

/// Table 1: the versions and executables of the Velvet application class.
pub fn table1_velvet_versions(corpus: &Corpus) -> String {
    version_table(corpus, "Velvet")
        .unwrap_or_else(|| "Velvet class not present in this corpus".to_string())
}

/// Figure 2: number of samples per application class, sorted descending
/// (the paper plots this series on a log scale).
pub fn figure2_sample_distribution(corpus: &Corpus) -> String {
    sample_distribution_table(corpus)
}

/// Table 2: the symbol fuzzy hashes of two versions of one application class
/// and their SSDeep similarity.
///
/// The paper uses OpenMalaria 46.0 vs 43.1; this driver picks the requested
/// class (falling back to the first class with at least two versions).
pub fn table2_hash_similarity_example(
    corpus: &Corpus,
    features: &[SampleFeatures],
    preferred_class: &str,
) -> String {
    // Find two samples of the same class, same executable, different version.
    let samples = corpus.samples();
    let pick = |class_name: &str| -> Option<(usize, usize)> {
        let first = samples
            .iter()
            .position(|s| s.class_name == class_name && s.version_index == 0)?;
        let second = samples.iter().position(|s| {
            s.class_name == class_name
                && s.executable_name == samples[first].executable_name
                && s.version_index != 0
        })?;
        Some((first, second))
    };
    let Some((a, b)) =
        pick(preferred_class).or_else(|| corpus.class_names().iter().find_map(|name| pick(name)))
    else {
        return "corpus has no class with two versions of the same executable".to_string();
    };

    let mut table = TextTable::new(vec![
        "Class",
        "Version",
        "Fuzzy Hash of Symbols",
        "Similarity",
    ]);
    let hash_a = features[a].get(FeatureKind::Symbols);
    let hash_b = features[b].get(FeatureKind::Symbols);
    let similarity = match (hash_a, hash_b) {
        (Some(ha), Some(hb)) => compare(ha, hb).to_string(),
        _ => "n/a (stripped)".to_string(),
    };
    let render_hash = |h: Option<&ssdeep::FuzzyHash>| {
        h.map(|h| h.to_string())
            .unwrap_or_else(|| "(no symbol table)".to_string())
    };
    table.add_row(vec![
        samples[a].class_name.clone(),
        samples[a].version_name.clone(),
        render_hash(hash_a),
        similarity.clone(),
    ]);
    table.add_row(vec![
        samples[b].class_name.clone(),
        samples[b].version_name.clone(),
        render_hash(hash_b),
        similarity,
    ]);
    table.render()
}

/// Table 3: the application classes randomly assigned to the unknown split
/// and how many test samples each contributes.
pub fn table3_unknown_classes(corpus: &Corpus, outcome: &PipelineOutcome) -> String {
    let mut counts: Vec<(String, usize)> = outcome
        .unknown_class_names
        .iter()
        .map(|name| {
            let count = corpus
                .samples()
                .iter()
                .filter(|s| &s.class_name == name)
                .count();
            (name.clone(), count)
        })
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut table = TextTable::new(vec!["Application Class", "Sample Count"])
        .with_alignment(vec![Align::Left, Align::Right]);
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    for (name, count) in counts {
        table.add_row(vec![name, count.to_string()]);
    }
    table.add_row(vec!["TOTAL".to_string(), total.to_string()]);
    table.render()
}

/// Table 4: the classification report (per-class precision / recall / F1 /
/// support plus micro / macro / weighted averages).
pub fn table4_classification_report(outcome: &PipelineOutcome) -> String {
    outcome.report.render()
}

/// Table 5: normalized feature importance per fuzzy-hash view.
pub fn table5_feature_importance(outcome: &PipelineOutcome) -> String {
    let mut table = TextTable::new(vec!["Features", "Importance"])
        .with_alignment(vec![Align::Left, Align::Right]);
    for fi in &outcome.feature_importance {
        table.add_row(vec![
            fi.kind.paper_name().to_string(),
            format!("{:.4}", fi.importance),
        ]);
    }
    table.render()
}

/// Figure 3: micro / macro / weighted F1 over the confidence-threshold sweep
/// measured on the internal validation set.
pub fn figure3_threshold_curve(outcome: &PipelineOutcome) -> String {
    let mut table = TextTable::new(vec![
        "Confidence Threshold",
        "micro f1",
        "macro f1",
        "weighted f1",
        "selected",
    ])
    .with_alignment(vec![
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    for point in &outcome.threshold_curve {
        let selected = if (point.threshold - outcome.confidence_threshold).abs() < 1e-9 {
            "<== chosen"
        } else {
            ""
        };
        table.add_row(vec![
            format!("{:.2}", point.threshold),
            format!("{:.3}", point.micro_f1),
            format!("{:.3}", point.macro_f1),
            format!("{:.3}", point.weighted_f1),
            selected.to_string(),
        ]);
    }
    table.render()
}

/// Summary line of the headline metrics (the numbers quoted in the paper's
/// abstract: macro 0.90, micro 0.89, weighted 0.90).
pub fn headline_summary(outcome: &PipelineOutcome) -> String {
    format!(
        "samples: train={} test={} (unknown-class test samples: {})\n\
         known classes: {}  unknown classes: {}\n\
         confidence threshold: {:.2}\n\
         macro f1 = {:.2}   micro f1 = {:.2}   weighted f1 = {:.2}",
        outcome.n_train,
        outcome.n_test,
        outcome.n_unknown_test,
        outcome.known_class_names.len(),
        outcome.unknown_class_names.len(),
        outcome.confidence_threshold,
        outcome.report.macro_avg().f1,
        outcome.report.micro().f1,
        outcome.report.weighted_avg().f1,
    )
}

/// Render the ablation study (E8).
pub fn ablation_table(results: &[AblationResult]) -> String {
    let mut table = TextTable::new(vec![
        "Configuration",
        "Features",
        "macro f1",
        "micro f1",
        "weighted f1",
    ])
    .with_alignment(vec![
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in results {
        let kinds: Vec<&str> = r.kinds.iter().map(|k| k.paper_name()).collect();
        table.add_row(vec![
            r.name.clone(),
            kinds.join(", "),
            format!("{:.3}", r.macro_f1),
            format!("{:.3}", r.micro_f1),
            format!("{:.3}", r.weighted_f1),
        ]);
    }
    table.render()
}

/// Render the baseline comparison (E9).
pub fn baseline_table(results: &[BaselineResult], forest: &PipelineOutcome) -> String {
    let mut table = TextTable::new(vec!["Model", "macro f1", "micro f1", "weighted f1"])
        .with_alignment(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    table.add_row(vec![
        "fuzzy-hash random forest".to_string(),
        format!("{:.3}", forest.report.macro_avg().f1),
        format!("{:.3}", forest.report.micro().f1),
        format!("{:.3}", forest.report.weighted_avg().f1),
    ]);
    for r in results {
        table.add_row(vec![
            r.name.clone(),
            format!("{:.3}", r.macro_f1),
            format!("{:.3}", r.micro_f1),
            format!("{:.3}", r.weighted_f1),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Catalog, CorpusBuilder};

    fn tiny() -> Corpus {
        CorpusBuilder::new(1).build(&Catalog::paper().scaled(0.02))
    }

    #[test]
    fn table1_mentions_velvet_executables() {
        let t = table1_velvet_versions(&tiny());
        assert!(t.contains("velveth"));
        assert!(t.contains("velvetg"));
    }

    #[test]
    fn figure2_lists_every_class() {
        let t = figure2_sample_distribution(&tiny());
        assert!(t.contains("Schrodinger"));
        assert!(t.contains("Velvet"));
        assert_eq!(t.lines().count(), 94);
    }

    #[test]
    fn table2_shows_two_rows_with_hashes() {
        let corpus = tiny();
        // Only extract features for the handful of OpenMalaria samples to
        // keep the test fast; other entries can be placeholders.
        let features: Vec<SampleFeatures> = corpus
            .samples()
            .iter()
            .map(|s| {
                if s.class_name == "OpenMalaria" {
                    SampleFeatures::extract(&corpus.generate_bytes(s))
                } else {
                    SampleFeatures::extract(b"placeholder")
                }
            })
            .collect();
        let t = table2_hash_similarity_example(&corpus, &features, "OpenMalaria");
        assert!(t.contains("OpenMalaria"));
        assert!(
            t.contains(':'),
            "fuzzy hashes have blocksize:sig1:sig2 form"
        );
        // Header + separator + 2 rows.
        assert_eq!(t.lines().count(), 4);
    }
}
