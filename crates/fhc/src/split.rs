//! The paper's two-phase train/test split.
//!
//! Phase one splits the *application classes* 80/20 into known and unknown
//! classes, so the test set contains samples of classes the model has never
//! seen (the situation a production deployment faces). Phase two splits the
//! samples of the known classes 60/40 (stratified) into training and test
//! samples. The final test set is the union of the 40% known-class samples
//! and *all* samples of the unknown classes.

use crate::error::FhcError;
use corpus::Corpus;
use mlcore::split::{split_groups, stratified_split};

/// Outcome of the two-phase split, expressed as corpus sample indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPhaseSplit {
    /// Corpus class indices of the known classes (the model's label space).
    pub known_classes: Vec<usize>,
    /// Corpus class indices of the unknown classes.
    pub unknown_classes: Vec<usize>,
    /// Corpus sample indices used for training (known classes only).
    pub train: Vec<usize>,
    /// Corpus sample indices used for testing (40% of known-class samples
    /// plus every unknown-class sample).
    pub test: Vec<usize>,
}

/// Configuration of the split fractions (defaults match the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Fraction of classes placed in the unknown set (paper: 0.2).
    pub unknown_class_fraction: f64,
    /// Fraction of known-class samples placed in the test set (paper: 0.4).
    pub test_sample_fraction: f64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            unknown_class_fraction: 0.2,
            test_sample_fraction: 0.4,
        }
    }
}

/// Perform the two-phase split on `corpus` with the given seed.
pub fn two_phase_split(
    corpus: &Corpus,
    config: SplitConfig,
    seed: u64,
) -> Result<TwoPhaseSplit, FhcError> {
    let n_classes = corpus.n_classes();
    if n_classes < 2 {
        return Err(FhcError::CorpusTooSmall(format!(
            "need at least 2 classes for a known/unknown split, have {n_classes}"
        )));
    }

    // Phase 1: class-level known/unknown split.
    let (mut known_classes, mut unknown_classes) =
        split_groups(n_classes, config.unknown_class_fraction, seed);
    known_classes.sort_unstable();
    unknown_classes.sort_unstable();

    // Phase 2: stratified sample split within the known classes.
    let known_sample_indices: Vec<usize> = corpus
        .samples()
        .iter()
        .filter(|s| known_classes.binary_search(&s.class_index).is_ok())
        .map(|s| s.sample_index)
        .collect();
    if known_sample_indices.is_empty() {
        return Err(FhcError::CorpusTooSmall(
            "no samples in the known classes".to_string(),
        ));
    }
    let known_labels: Vec<usize> = known_sample_indices
        .iter()
        .map(|&i| corpus.samples()[i].class_index)
        .collect();
    let split = stratified_split(&known_labels, config.test_sample_fraction, seed ^ 0xA5A5)?;

    let train: Vec<usize> = split
        .train
        .iter()
        .map(|&i| known_sample_indices[i])
        .collect();
    let mut test: Vec<usize> = split
        .test
        .iter()
        .map(|&i| known_sample_indices[i])
        .collect();

    // All samples of the unknown classes go to the test set.
    test.extend(
        corpus
            .samples()
            .iter()
            .filter(|s| unknown_classes.binary_search(&s.class_index).is_ok())
            .map(|s| s.sample_index),
    );
    test.sort_unstable();

    Ok(TwoPhaseSplit {
        known_classes,
        unknown_classes,
        train,
        test,
    })
}

impl TwoPhaseSplit {
    /// Number of test samples that belong to unknown classes.
    pub fn n_unknown_test_samples(&self, corpus: &Corpus) -> usize {
        self.test
            .iter()
            .filter(|&&i| {
                self.unknown_classes
                    .binary_search(&corpus.samples()[i].class_index)
                    .is_ok()
            })
            .count()
    }

    /// Whether a corpus class index is in the known set.
    pub fn is_known_class(&self, class_index: usize) -> bool {
        self.known_classes.binary_search(&class_index).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Catalog, CorpusBuilder};

    fn corpus() -> Corpus {
        CorpusBuilder::new(5).build(&Catalog::paper().scaled(0.02))
    }

    #[test]
    fn split_fractions_match_paper_shape() {
        let corpus = corpus();
        let split = two_phase_split(&corpus, SplitConfig::default(), 42).unwrap();
        // ~20% of 92 classes unknown.
        assert!((14..=23).contains(&split.unknown_classes.len()));
        assert_eq!(split.known_classes.len() + split.unknown_classes.len(), 92);
        // Training only contains known-class samples.
        for &i in &split.train {
            assert!(split.is_known_class(corpus.samples()[i].class_index));
        }
        // Test contains every unknown-class sample.
        let unknown_total: usize = corpus
            .samples()
            .iter()
            .filter(|s| !split.is_known_class(s.class_index))
            .count();
        assert_eq!(split.n_unknown_test_samples(&corpus), unknown_total);
    }

    #[test]
    fn train_and_test_are_disjoint_and_cover_known_plus_unknown() {
        let corpus = corpus();
        let split = two_phase_split(&corpus, SplitConfig::default(), 7).unwrap();
        for &i in &split.train {
            assert!(split.test.binary_search(&i).is_err());
        }
        // Every sample is in train, test, or belongs to a known class
        // singleton kept in training; no sample is lost.
        assert_eq!(split.train.len() + split.test.len(), corpus.n_samples());
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = corpus();
        let a = two_phase_split(&corpus, SplitConfig::default(), 3).unwrap();
        let b = two_phase_split(&corpus, SplitConfig::default(), 3).unwrap();
        assert_eq!(a, b);
        let c = two_phase_split(&corpus, SplitConfig::default(), 4).unwrap();
        assert_ne!(a.unknown_classes, c.unknown_classes);
    }

    #[test]
    fn every_known_class_has_training_samples() {
        let corpus = corpus();
        let split = two_phase_split(&corpus, SplitConfig::default(), 11).unwrap();
        for &class in &split.known_classes {
            let has_train = split
                .train
                .iter()
                .any(|&i| corpus.samples()[i].class_index == class);
            assert!(has_train, "known class {class} has no training samples");
        }
    }

    #[test]
    fn custom_fractions_respected() {
        let corpus = corpus();
        let config = SplitConfig {
            unknown_class_fraction: 0.5,
            test_sample_fraction: 0.25,
        };
        let split = two_phase_split(&corpus, config, 1).unwrap();
        assert!((40..=52).contains(&split.unknown_classes.len()));
    }
}
