//! Error type for the classification pipeline.

use std::fmt;

/// Errors raised by the Fuzzy Hash Classifier pipeline.
#[derive(Debug)]
pub enum FhcError {
    /// The corpus is too small for the requested split.
    CorpusTooSmall(String),
    /// An underlying machine-learning operation failed.
    Ml(mlcore::MlError),
    /// An executable could not be analyzed.
    Binary(binary::BinaryError),
    /// Configuration problem (e.g. empty threshold grid).
    InvalidConfig(&'static str),
    /// A trained-classifier artifact could not be decoded (bad magic,
    /// unsupported version, checksum mismatch, malformed payload).
    Artifact(String),
    /// Reading or writing a trained-classifier artifact failed.
    Io(std::io::Error),
    /// A distributed shard-serving operation failed (dead worker, protocol
    /// violation, handshake mismatch). See [`crate::shardnet::NetError`].
    Net(crate::shardnet::NetError),
}

impl fmt::Display for FhcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FhcError::CorpusTooSmall(msg) => write!(f, "corpus too small: {msg}"),
            FhcError::Ml(e) => write!(f, "machine-learning error: {e}"),
            FhcError::Binary(e) => write!(f, "binary analysis error: {e}"),
            FhcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FhcError::Artifact(msg) => write!(f, "invalid classifier artifact: {msg}"),
            FhcError::Io(e) => write!(f, "artifact I/O error: {e}"),
            FhcError::Net(e) => write!(f, "shard serving error: {e}"),
        }
    }
}

impl std::error::Error for FhcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FhcError::Ml(e) => Some(e),
            FhcError::Binary(e) => Some(e),
            FhcError::Io(e) => Some(e),
            FhcError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::shardnet::NetError> for FhcError {
    fn from(e: crate::shardnet::NetError) -> Self {
        FhcError::Net(e)
    }
}

impl From<std::io::Error> for FhcError {
    fn from(e: std::io::Error) -> Self {
        FhcError::Io(e)
    }
}

impl From<mlcore::MlError> for FhcError {
    fn from(e: mlcore::MlError) -> Self {
        FhcError::Ml(e)
    }
}

impl From<binary::BinaryError> for FhcError {
    fn from(e: binary::BinaryError) -> Self {
        FhcError::Binary(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FhcError::from(mlcore::MlError::EmptyDataset);
        assert!(e.to_string().contains("machine-learning"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FhcError::from(binary::BinaryError::BadMagic);
        assert!(e.to_string().contains("binary"));
        let e = FhcError::CorpusTooSmall("only 2 classes".into());
        assert!(e.to_string().contains("2 classes"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(FhcError::InvalidConfig("x").to_string().contains('x'));
        let e = FhcError::Artifact("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = FhcError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FhcError::from(crate::shardnet::NetError::WorkerLost {
            peer: "tcp:127.0.0.1:9000".into(),
            detail: "connection reset by peer".into(),
        });
        assert!(e.to_string().contains("9000"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
