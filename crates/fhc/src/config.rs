//! The unified, layered configuration of the classifier.
//!
//! Configuration used to be scattered: training knobs lived in
//! [`PipelineConfig`], serving parallelism in
//! [`ServingConfig`], and the training-side batch parallelism was hardcoded
//! (chunk-of-4 `ParallelConfig`s inside `extract_features` and
//! `feature_matrix`). [`FhcConfig`] collapses all of it into one value with
//! four layers:
//!
//! | layer      | type                                   | governs                                              | persisted? |
//! |------------|----------------------------------------|------------------------------------------------------|------------|
//! | `pipeline` | [`PipelineConfig`]                     | seeds, splits, grids, thresholds, feature kinds      | seed & co. inside artifacts |
//! | `parallel` | [`hpcutil::ParallelConfig`]            | training-side batch parallelism (extraction, feature matrices) | never |
//! | `serving`  | [`ServingConfig`]                      | `classify_batch` worker threads / chunking           | never |
//! | `backend`  | [`BackendConfig`] | which [`SimilarityBackend`](crate::backend::SimilarityBackend) scores queries | never |
//!
//! None of the runtime layers ever changes scores or predictions — they only
//! change how fast the identical numbers are produced.
//!
//! ```
//! use fhc::backend::BackendConfig;
//! use fhc::config::FhcConfig;
//!
//! let config = FhcConfig::new()
//!     .seed(7)
//!     .backend(BackendConfig::Sharded { shards: 4 });
//! assert_eq!(config.pipeline.seed, 7);
//! ```

use crate::backend::BackendConfig;
use crate::pipeline::PipelineConfig;
use crate::serving::ServingConfig;
use hpcutil::ParallelConfig;

/// The default training-side batch parallelism: all hardware threads,
/// claiming 4 samples per scheduling step (small enough to balance wildly
/// differing executable sizes, large enough to keep counter contention
/// negligible). This is the value the old hardcoded `ParallelConfig`s used.
pub fn default_parallel() -> ParallelConfig {
    ParallelConfig {
        threads: 0,
        chunk: 4,
    }
}

/// One configuration for the whole classifier, layered by concern.
///
/// Construct with [`FhcConfig::new`] and the builder methods, or fill the
/// (all-public) fields directly. [`FuzzyHashClassifier::with_config`]
/// consumes it for training;
/// [`TrainedClassifier::load_with`](crate::serving::TrainedClassifier::load_with)
/// applies its runtime layers when opening a stored artifact.
///
/// [`FuzzyHashClassifier::with_config`]: crate::pipeline::FuzzyHashClassifier::with_config
#[derive(Debug, Clone)]
pub struct FhcConfig {
    /// Training behavior: seed, splits, forest, grid search, thresholds,
    /// feature kinds. The only layer that affects *what* is learned.
    pub pipeline: PipelineConfig,
    /// Training-side batch parallelism (feature extraction and feature
    /// matrices). Runtime-only; previously hardcoded.
    pub parallel: ParallelConfig,
    /// Serving-side batch parallelism (`classify_batch` and friends).
    /// Runtime-only; never persisted into artifacts.
    pub serving: ServingConfig,
    /// Which similarity backend scores queries against the reference set.
    /// Runtime-only; any artifact can be opened under any backend.
    pub backend: BackendConfig,
}

impl Default for FhcConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            // Not ParallelConfig::default(): the training batches keep the
            // chunk-of-4 the old hardcodes used (load balance over wildly
            // differing executable sizes beats scheduling overhead here).
            parallel: default_parallel(),
            serving: ServingConfig::default(),
            backend: BackendConfig::default(),
        }
    }
}

impl FhcConfig {
    /// The default configuration (equivalent to `FhcConfig::default()`):
    /// paper-faithful pipeline defaults, chunk-of-4 training parallelism,
    /// default serving parallelism, indexed backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the pipeline (training) layer.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Set the root seed (convenience for the common case of customizing
    /// only `pipeline.seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.pipeline.seed = seed;
        self
    }

    /// Replace the training-side batch parallelism layer.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Replace the serving layer.
    pub fn serving(mut self, serving: ServingConfig) -> Self {
        self.serving = serving;
        self
    }

    /// Replace the similarity-backend layer.
    pub fn backend(mut self, backend: BackendConfig) -> Self {
        self.backend = backend;
        self
    }
}

impl From<PipelineConfig> for FhcConfig {
    /// Wrap a bare pipeline configuration with default runtime layers (the
    /// upgrade path for pre-`FhcConfig` call sites).
    fn from(pipeline: PipelineConfig) -> Self {
        Self {
            pipeline,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layers_match_the_old_behavior() {
        let config = FhcConfig::default();
        // The training parallelism defaults to the previously hardcoded
        // chunk-of-4 over all hardware threads.
        assert_eq!(config.parallel, default_parallel());
        assert_eq!(config.parallel.chunk, 4);
        assert_eq!(config.parallel.threads, 0);
        assert_eq!(config.serving, ServingConfig::default());
        assert_eq!(config.backend, BackendConfig::Indexed);
        assert_eq!(config.pipeline.seed, PipelineConfig::default().seed);
    }

    #[test]
    fn builder_methods_set_each_layer() {
        let config = FhcConfig::new()
            .seed(99)
            .parallel(ParallelConfig::with_threads(2))
            .serving(ServingConfig {
                threads: 3,
                chunk: 7,
            })
            .backend(BackendConfig::Sharded { shards: 5 });
        assert_eq!(config.pipeline.seed, 99);
        assert_eq!(config.parallel.threads, 2);
        assert_eq!(config.serving.chunk, 7);
        assert_eq!(config.backend, BackendConfig::Sharded { shards: 5 });
    }

    #[test]
    fn pipeline_config_upgrades_into_fhc_config() {
        let pipeline = PipelineConfig {
            seed: 123,
            ..Default::default()
        };
        let config: FhcConfig = pipeline.into();
        assert_eq!(config.pipeline.seed, 123);
        assert_eq!(config.backend, BackendConfig::default());
    }
}
