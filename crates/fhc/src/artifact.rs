//! Versioned on-disk artifacts for trained classifiers.
//!
//! Training is the expensive part of the pipeline (grid search, threshold
//! tuning, forest growing); serving is cheap. Persisting a
//! [`TrainedClassifier`] lets one process train and many processes classify.
//! The format is a hand-rolled binary encoding (`hpcutil::codec`) because
//! the build environment has no serialization crates:
//!
//! ```text
//! u64  magic          "FHCLSART" as little-endian bytes
//! u32  format version (currently 2)
//! u32+bytes  payload  (length-prefixed)
//! u64  FNV-1a checksum of the payload
//! ```
//!
//! The payload holds the root seed, the confidence threshold, the active
//! feature kinds, the reference hash set (class names + training-sample
//! fuzzy hashes), the forest parameters, every tree of the forest, and the
//! threshold-tuning curve. Decoding validates the magic, version, checksum,
//! and every length/index, so corrupt or truncated artifacts produce a
//! clean [`FhcError::Artifact`] instead of a panic.
//!
//! **Version 2** additionally persists the *prepared* similarity index of
//! every reference hash (run-eliminated signatures + sorted packed window
//! keys, see [`ssdeep::PreparedHash`]), so a loaded classifier serves at
//! full speed immediately — the index arrives ready-built with the
//! artifact and loading skips the per-hash preparation. Decoding enforces
//! the structural invariants of the prepared state (lengths, key counts,
//! sortedness); semantic integrity rests on the checksum like every other
//! field, and debug builds (hence the test suite) fully verify the state
//! derives from the hashes. Version-1 artifacts (original signatures only)
//! still load — the prepared index is rebuilt from the hashes at load time.
//!
//! **Version 3** changes only how the window keys are stored: the sorted
//! `u64` key sets are delta-encoded as varints
//! ([`hpcutil::ByteWriter::put_u64_delta_seq`]) instead of 8 raw bytes per
//! key, shrinking the dominant component of the prepared index to roughly
//! the entropy of the key gaps. Version-2 artifacts (raw key sequences)
//! still load, and re-saving upgrades them to version 3 byte-identically.
//! The same prepared encoding carries queries on the shard-serving wire
//! (see [`crate::shardnet::wire`]).

use crate::config::FhcConfig;
use crate::error::FhcError;
use crate::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use crate::serving::{ServingConfig, TrainedClassifier};
use crate::similarity::ReferenceSet;
use crate::threshold::ThresholdPoint;
use hpcutil::codec::fnv1a64;
use hpcutil::{ByteReader, ByteWriter, CodecError};
use mlcore::forest::{RandomForest, RandomForestParams};
use ssdeep::{FuzzyHash, PreparedHash};
use std::path::Path;
use std::sync::Arc;

/// `"FHCLSART"` interpreted as a little-endian `u64`.
const MAGIC: u64 = u64::from_le_bytes(*b"FHCLSART");

/// Current artifact format version: 2 added the persisted prepared
/// similarity index; 3 delta-encodes its sorted window keys.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest artifact format version this build still reads.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

fn encode_kind(kind: FeatureKind) -> u8 {
    match kind {
        FeatureKind::File => 0,
        FeatureKind::Strings => 1,
        FeatureKind::Symbols => 2,
    }
}

fn decode_kind(tag: u8) -> Result<FeatureKind, CodecError> {
    match tag {
        0 => Ok(FeatureKind::File),
        1 => Ok(FeatureKind::Strings),
        2 => Ok(FeatureKind::Symbols),
        other => Err(CodecError::new(format!("unknown feature kind tag {other}"))),
    }
}

fn encode_hash(w: &mut ByteWriter, hash: &FuzzyHash) {
    w.put_str(&hash.to_string());
}

fn decode_hash(r: &mut ByteReader<'_>) -> Result<FuzzyHash, CodecError> {
    let text = r.get_str()?;
    text.parse()
        .map_err(|e| CodecError::new(format!("invalid fuzzy hash {text:?}: {e}")))
}

fn decode_features(r: &mut ByteReader<'_>) -> Result<SampleFeatures, CodecError> {
    let file = decode_hash(r)?;
    let strings = decode_hash(r)?;
    let symbols = if r.get_bool()? {
        Some(decode_hash(r)?)
    } else {
        None
    };
    Ok(SampleFeatures {
        file,
        strings,
        symbols,
    })
}

/// One prepared hash = the original hash plus its precomputed comparison
/// state (run-eliminated signatures + sorted window keys). Version 3
/// delta-encodes the sorted keys; version 2 stored them raw.
fn encode_prepared_hash(w: &mut ByteWriter, prepared: &PreparedHash) {
    encode_hash(w, prepared.hash());
    w.put_str(prepared.primary().eliminated());
    w.put_u64_delta_seq(prepared.primary().keys());
    w.put_str(prepared.double().eliminated());
    w.put_u64_delta_seq(prepared.double().keys());
}

fn decode_keys(r: &mut ByteReader<'_>, version: u32) -> Result<Vec<u64>, CodecError> {
    if version >= 3 {
        r.get_u64_delta_seq()
    } else {
        r.get_u64_seq()
    }
}

fn decode_prepared_hash(r: &mut ByteReader<'_>, version: u32) -> Result<PreparedHash, CodecError> {
    let hash = decode_hash(r)?;
    let eliminated = r.get_str()?;
    let keys = decode_keys(r, version)?;
    let eliminated_double = r.get_str()?;
    let keys_double = decode_keys(r, version)?;
    PreparedHash::from_precomputed(hash, eliminated, keys, eliminated_double, keys_double)
        .map_err(CodecError::new)
}

/// Encode prepared sample features in the current (version-3) layout. Also
/// the on-wire form of a shard-serving score request
/// ([`crate::shardnet::wire`]).
pub(crate) fn encode_prepared_features(w: &mut ByteWriter, features: &PreparedSampleFeatures) {
    encode_prepared_hash(w, &features.file);
    encode_prepared_hash(w, &features.strings);
    match &features.symbols {
        None => w.put_bool(false),
        Some(prepared) => {
            w.put_bool(true);
            encode_prepared_hash(w, prepared);
        }
    }
}

/// Decode prepared sample features as laid out by artifact `version`.
pub(crate) fn decode_prepared_features(
    r: &mut ByteReader<'_>,
    version: u32,
) -> Result<PreparedSampleFeatures, CodecError> {
    let file = decode_prepared_hash(r, version)?;
    let strings = decode_prepared_hash(r, version)?;
    let symbols = if r.get_bool()? {
        Some(decode_prepared_hash(r, version)?)
    } else {
        None
    };
    Ok(PreparedSampleFeatures {
        file,
        strings,
        symbols,
    })
}

fn encode_payload(classifier: &TrainedClassifier) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(classifier.seed);
    w.put_f64(classifier.confidence_threshold);

    let kinds = classifier.reference.kinds();
    w.put_usize(kinds.len());
    for &kind in kinds {
        w.put_u8(encode_kind(kind));
    }

    let reference = &classifier.reference;
    w.put_usize(reference.n_classes());
    for class in 0..reference.n_classes() {
        w.put_str(&reference.class_names()[class]);
        let samples = reference.prepared_class_features(class);
        w.put_usize(samples.len());
        for features in samples {
            encode_prepared_features(&mut w, features);
        }
    }

    classifier.forest_params.encode(&mut w);
    classifier.forest.encode(&mut w);

    w.put_usize(classifier.threshold_curve.len());
    for point in &classifier.threshold_curve {
        w.put_f64(point.threshold);
        w.put_f64(point.micro_f1);
        w.put_f64(point.macro_f1);
        w.put_f64(point.weighted_f1);
    }
    w.into_bytes()
}

fn decode_payload(payload: &[u8], version: u32) -> Result<TrainedClassifier, CodecError> {
    let mut r = ByteReader::new(payload);
    let seed = r.get_u64()?;
    let confidence_threshold = r.get_f64()?;

    let n_kinds = r.get_usize()?;
    if n_kinds == 0 || n_kinds > FeatureKind::ALL.len() {
        return Err(CodecError::new(format!(
            "invalid feature kind count {n_kinds}"
        )));
    }
    let mut kinds = Vec::with_capacity(n_kinds);
    for _ in 0..n_kinds {
        kinds.push(decode_kind(r.get_u8()?)?);
    }

    let n_classes = r.get_usize()?;
    if n_classes == 0 {
        return Err(CodecError::new("artifact has no known classes"));
    }
    let mut class_names = Vec::with_capacity(n_classes);
    let mut prepared_by_class: Vec<Vec<PreparedSampleFeatures>> = Vec::with_capacity(n_classes);
    for class in 0..n_classes {
        class_names.push(r.get_str()?);
        let n_samples = r.get_usize()?;
        if n_samples == 0 {
            return Err(CodecError::new(format!(
                "class {class} has no reference samples"
            )));
        }
        let mut prepared = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            if version >= 2 {
                // v2+ persists the prepared index; decoding verifies it
                // derives from the hashes (see PreparedHash::from_precomputed).
                prepared.push(decode_prepared_features(&mut r, version)?);
            } else {
                // v1 stores only the original hashes; rebuild the prepared
                // state at load time.
                prepared.push(PreparedSampleFeatures::prepare(&decode_features(&mut r)?));
            }
        }
        prepared_by_class.push(prepared);
    }
    let reference = Arc::new(ReferenceSet::from_prepared_parts(
        class_names,
        prepared_by_class,
        kinds,
    ));

    let forest_params = RandomForestParams::decode(&mut r)?;
    let forest = RandomForest::decode(&mut r)?;
    if forest.n_classes() != reference.n_classes() {
        return Err(CodecError::new(format!(
            "forest has {} classes but the reference set has {}",
            forest.n_classes(),
            reference.n_classes()
        )));
    }
    if forest.n_features() != reference.n_columns() {
        return Err(CodecError::new(format!(
            "forest expects {} features but the reference set produces {}",
            forest.n_features(),
            reference.n_columns()
        )));
    }

    let n_points = r.get_usize()?;
    let mut threshold_curve = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        threshold_curve.push(ThresholdPoint {
            threshold: r.get_f64()?,
            micro_f1: r.get_f64()?,
            macro_f1: r.get_f64()?,
            weighted_f1: r.get_f64()?,
        });
    }
    r.expect_end()?;

    // Parallelism and backend choice are per-process runtime concerns, not
    // part of the artifact; loaded classifiers start from the defaults (use
    // `from_bytes_with` / `load_with` to open under a different backend).
    let backend = crate::backend::BackendConfig::default().build(reference.clone());
    Ok(TrainedClassifier::from_parts(
        reference,
        backend,
        forest,
        forest_params,
        confidence_threshold,
        threshold_curve,
        seed,
        ServingConfig::default(),
    ))
}

impl TrainedClassifier {
    /// Encode the classifier into the versioned artifact format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = encode_payload(self);
        let mut w = ByteWriter::new();
        w.put_u64(MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_bytes(&payload);
        w.put_u64(fnv1a64(&payload));
        w.into_bytes()
    }

    /// Decode a classifier from artifact bytes, validating magic, version,
    /// checksum, and internal consistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FhcError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u64().map_err(codec_err)?;
        if magic != MAGIC {
            return Err(FhcError::Artifact(format!(
                "bad magic {magic:#018x}: not a trained-classifier artifact"
            )));
        }
        let version = r.get_u32().map_err(codec_err)?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(FhcError::Artifact(format!(
                "unsupported artifact format version {version} \
                 (this build reads {MIN_SUPPORTED_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let payload = r.get_bytes().map_err(codec_err)?;
        let checksum = r.get_u64().map_err(codec_err)?;
        r.expect_end().map_err(codec_err)?;
        let actual = fnv1a64(&payload);
        if checksum != actual {
            return Err(FhcError::Artifact(format!(
                "checksum mismatch (stored {checksum:#018x}, computed {actual:#018x}): artifact is corrupt"
            )));
        }
        decode_payload(&payload, version).map_err(codec_err)
    }

    /// [`TrainedClassifier::from_bytes`], then apply the runtime layers of
    /// `config` (serving parallelism and similarity backend). The artifact
    /// format does not persist runtime choices, so any stored artifact can
    /// be opened under any backend — scores and predictions are identical
    /// under all of them. A remote backend that cannot be connected
    /// (unreachable or mismatched workers) is an error, not a panic.
    pub fn from_bytes_with(bytes: &[u8], config: &FhcConfig) -> Result<Self, FhcError> {
        let mut classifier = Self::from_bytes(bytes)?;
        classifier.try_apply_config(config)?;
        Ok(classifier)
    }

    /// Save the classifier to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FhcError> {
        std::fs::write(path, self.to_bytes()).map_err(FhcError::Io)
    }

    /// Load a classifier previously written with [`TrainedClassifier::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FhcError> {
        let bytes = std::fs::read(path).map_err(FhcError::Io)?;
        Self::from_bytes(&bytes)
    }

    /// [`TrainedClassifier::load`], then apply the runtime layers of
    /// `config` — the one-call way to open a stored artifact under a chosen
    /// backend and serving parallelism.
    pub fn load_with(path: impl AsRef<Path>, config: &FhcConfig) -> Result<Self, FhcError> {
        let bytes = std::fs::read(path).map_err(FhcError::Io)?;
        Self::from_bytes_with(&bytes, config)
    }
}

fn codec_err(e: CodecError) -> FhcError {
    FhcError::Artifact(e.to_string())
}

/// Magic prefix of a reference-set slice container
/// ([`ReferenceSet::encode_slice`]).
const SLICE_MAGIC: u64 = u64::from_le_bytes(*b"FHCSLICE");

impl ReferenceSet {
    /// Encode the reference samples of `classes` as one self-contained,
    /// checksummed *slice*: a per-class sub-artifact in the version-3
    /// prepared encoding, small enough to ship over the wire as a
    /// [`PushSlice`](crate::shardnet::wire::PushSlice) frame.
    ///
    /// Every slice carries the full-set geometry — active kinds, *all*
    /// class names, and the full set's [`ReferenceSet::fingerprint`] — plus
    /// the prepared samples of its own classes only. Any subset of a set's
    /// slices therefore reassembles (via [`ReferenceSet::from_slices`])
    /// into a sparse set with the full column layout, which is what lets a
    /// diskless shard worker serve its partition with slice-sized memory.
    ///
    /// `classes` must be non-empty, in range, and duplicate-free.
    pub fn encode_slice(&self, classes: &[usize]) -> Result<Vec<u8>, FhcError> {
        if classes.is_empty() {
            return Err(FhcError::Artifact(
                "a reference slice needs at least one class".into(),
            ));
        }
        let mut sorted = classes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != classes.len() {
            return Err(FhcError::Artifact(
                "a reference slice cannot list a class twice".into(),
            ));
        }
        if let Some(&bad) = sorted.iter().find(|&&c| c >= self.n_classes()) {
            return Err(FhcError::Artifact(format!(
                "slice class id {bad} out of range: the reference set has {} classes",
                self.n_classes()
            )));
        }

        let mut w = ByteWriter::new();
        w.put_u64(self.fingerprint());
        let kinds = self.kinds();
        w.put_usize(kinds.len());
        for &kind in kinds {
            w.put_u8(encode_kind(kind));
        }
        w.put_usize(self.n_classes());
        for name in self.class_names() {
            w.put_str(name);
        }
        w.put_usize(sorted.len());
        for &class in &sorted {
            let samples = self.prepared_class_features(class);
            w.put_usize(class);
            w.put_usize(samples.len());
            for features in samples {
                encode_prepared_features(&mut w, features);
            }
        }
        let payload = w.into_bytes();

        let mut out = ByteWriter::new();
        out.put_u64(SLICE_MAGIC);
        out.put_u32(FORMAT_VERSION);
        out.put_bytes(&payload);
        out.put_u64(fnv1a64(&payload));
        Ok(out.into_bytes())
    }

    /// Reassemble slices produced by [`ReferenceSet::encode_slice`] into a
    /// reference set, returning it with the *declared* full-set fingerprint
    /// every slice carried.
    ///
    /// Each slice is checksum-verified on its own; across slices the
    /// declared fingerprint, active kinds, and class names must agree, and
    /// no class may arrive twice. Classes no slice covers stay empty — the
    /// set keeps the full column geometry but scores only what it holds,
    /// exactly the sparse state a shard worker serving a partition needs.
    /// If the slices happen to cover *every* class, the reassembled set's
    /// own fingerprint is recomputed and must equal the declared one; a
    /// partial set cannot be re-fingerprinted (the fingerprint walks every
    /// sample), so there the declared value is trusted and integrity rides
    /// on the per-slice checksums.
    pub fn from_slices(slices: &[Vec<u8>]) -> Result<(Self, u64), FhcError> {
        let first = decode_slice(slices.first().ok_or_else(|| {
            FhcError::Artifact("cannot assemble a reference set from zero slices".into())
        })?)?;
        let mut prepared_by_class: Vec<Vec<PreparedSampleFeatures>> =
            vec![Vec::new(); first.class_names.len()];
        for slice in slices.iter().skip(1).map(|s| decode_slice(s)) {
            let slice = slice?;
            if slice.fingerprint != first.fingerprint {
                return Err(FhcError::Artifact(format!(
                    "slice fingerprint mismatch: {:#018x} vs {:#018x} — \
                     the slices come from different reference sets",
                    slice.fingerprint, first.fingerprint
                )));
            }
            if slice.kinds != first.kinds || slice.class_names != first.class_names {
                return Err(FhcError::Artifact(
                    "slice geometry mismatch: kinds or class names differ across slices".into(),
                ));
            }
            merge_slice_classes(&mut prepared_by_class, slice.owned)?;
        }
        merge_slice_classes(&mut prepared_by_class, first.owned)?;

        let full = prepared_by_class.iter().all(|samples| !samples.is_empty());
        let set =
            ReferenceSet::from_prepared_parts(first.class_names, prepared_by_class, first.kinds);
        if full {
            let actual = set.fingerprint();
            if actual != first.fingerprint {
                return Err(FhcError::Artifact(format!(
                    "reassembled reference set fingerprints to {actual:#018x}, \
                     but the slices declared {:#018x}",
                    first.fingerprint
                )));
            }
        }
        Ok((set, first.fingerprint))
    }
}

/// One decoded slice container, pre-merge.
struct DecodedSlice {
    fingerprint: u64,
    kinds: Vec<FeatureKind>,
    class_names: Vec<String>,
    /// `(class id, prepared samples)` for each class the slice owns.
    owned: Vec<(usize, Vec<PreparedSampleFeatures>)>,
}

/// Place each owned class of a slice into the assembly, rejecting a class
/// that two slices both claim.
fn merge_slice_classes(
    prepared_by_class: &mut [Vec<PreparedSampleFeatures>],
    owned: Vec<(usize, Vec<PreparedSampleFeatures>)>,
) -> Result<(), FhcError> {
    for (class, samples) in owned {
        let cell = &mut prepared_by_class[class];
        if !cell.is_empty() {
            return Err(FhcError::Artifact(format!(
                "class {class} arrives in more than one slice"
            )));
        }
        *cell = samples;
    }
    Ok(())
}

/// Validate a slice container (magic, version, checksum) and decode its
/// payload.
fn decode_slice(bytes: &[u8]) -> Result<DecodedSlice, FhcError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_u64().map_err(codec_err)?;
    if magic != SLICE_MAGIC {
        return Err(FhcError::Artifact(format!(
            "bad magic {magic:#018x}: not a reference-set slice"
        )));
    }
    let version = r.get_u32().map_err(codec_err)?;
    if version != FORMAT_VERSION {
        return Err(FhcError::Artifact(format!(
            "unsupported slice format version {version} (this build writes {FORMAT_VERSION})"
        )));
    }
    let payload = r.get_bytes().map_err(codec_err)?;
    let checksum = r.get_u64().map_err(codec_err)?;
    r.expect_end().map_err(codec_err)?;
    let actual = fnv1a64(&payload);
    if checksum != actual {
        return Err(FhcError::Artifact(format!(
            "slice checksum mismatch (stored {checksum:#018x}, computed {actual:#018x})"
        )));
    }
    decode_slice_payload(&payload).map_err(codec_err)
}

fn decode_slice_payload(payload: &[u8]) -> Result<DecodedSlice, CodecError> {
    let mut r = ByteReader::new(payload);
    let fingerprint = r.get_u64()?;
    let n_kinds = r.get_usize()?;
    if n_kinds == 0 || n_kinds > FeatureKind::ALL.len() {
        return Err(CodecError::new(format!(
            "invalid feature kind count {n_kinds}"
        )));
    }
    let mut kinds = Vec::with_capacity(n_kinds);
    for _ in 0..n_kinds {
        kinds.push(decode_kind(r.get_u8()?)?);
    }
    let n_classes = r.get_usize()?;
    if n_classes == 0 {
        return Err(CodecError::new("slice declares zero classes"));
    }
    // Every class name costs at least its 4-byte length prefix, so the
    // count is validated against the remaining payload before allocating.
    if r.remaining() < n_classes.saturating_mul(4) {
        return Err(CodecError::new(format!(
            "slice claims {n_classes} classes but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut class_names = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        class_names.push(r.get_str()?);
    }
    let n_owned = r.get_usize()?;
    if n_owned == 0 || n_owned > n_classes {
        return Err(CodecError::new(format!(
            "slice owns {n_owned} of {n_classes} classes"
        )));
    }
    let mut owned = Vec::with_capacity(n_owned);
    for _ in 0..n_owned {
        let class = r.get_usize()?;
        if class >= n_classes {
            return Err(CodecError::new(format!(
                "slice owns class {class}, but only {n_classes} classes exist"
            )));
        }
        let n_samples = r.get_usize()?;
        if n_samples == 0 {
            return Err(CodecError::new(format!(
                "slice owns class {class} with zero reference samples"
            )));
        }
        // Every prepared sample costs at least one byte.
        if r.remaining() < n_samples {
            return Err(CodecError::new(format!(
                "class {class} claims {n_samples} samples but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            samples.push(decode_prepared_features(&mut r, FORMAT_VERSION)?);
        }
        owned.push((class, samples));
    }
    r.expect_end()?;
    Ok(DecodedSlice {
        fingerprint,
        kinds,
        class_names,
        owned,
    })
}

/// Magic prefix of an artifact-delta container ([`ArtifactDelta`]).
const DELTA_MAGIC: u64 = u64::from_le_bytes(*b"FHCDELTA");

/// A checksummed patch between two reference sets, layered on the
/// per-class slice codec: retire these classes (by name), then add these
/// slices — [`ReferenceSet::encode_slice`] outputs of the *target* set.
///
/// A delta names its base by fingerprint, so it can never be applied to
/// the wrong set: [`ArtifactDelta::apply`] refuses a base whose declared
/// fingerprint differs (the stale-base rejection), and after patching a
/// fully-held set the evolved fingerprint must recompute to the declared
/// target. Changed classes travel as retire-then-re-add, so a delta's
/// size tracks what actually changed — which is what lets a fleet patch
/// a diskless worker over the wire
/// ([`PushDelta`](crate::shardnet::wire::PushDelta)) instead of
/// re-pushing every class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactDelta {
    /// Fingerprint the base set must declare for the delta to apply.
    pub base_fingerprint: u64,
    /// Fingerprint the evolved set declares (and, when fully held,
    /// recomputes to) after applying.
    pub target_fingerprint: u64,
    /// Class names retired from the base, in application order.
    pub retire_classes: Vec<String>,
    /// Per-class slices of the target set added after the retires, in
    /// application order.
    pub add_slices: Vec<Vec<u8>>,
}

impl ArtifactDelta {
    /// Diff two reference sets into the minimal retire/add patch: classes
    /// are matched by name and compared by content (the class's slice of
    /// the fingerprint input), so removed and changed classes retire,
    /// while new and changed classes add. When the surviving base order
    /// cannot reproduce the target's class order (a reorder), the delta
    /// falls back to full replacement — correct, just not minimal.
    pub fn between(base: &ReferenceSet, target: &ReferenceSet) -> Result<Self, FhcError> {
        if base.kinds() != target.kinds() {
            return Err(FhcError::Artifact(
                "cannot diff reference sets with different active feature kinds".into(),
            ));
        }
        let base_keys: Vec<u64> = (0..base.n_classes())
            .map(|c| base.class_content_key(c))
            .collect();
        let target_keys: Vec<u64> = (0..target.n_classes())
            .map(|c| target.class_content_key(c))
            .collect();
        let mut retire: Vec<String> = Vec::new();
        for (c, name) in base.class_names().iter().enumerate() {
            let unchanged = target
                .class_id(name)
                .is_some_and(|t| target_keys[t] == base_keys[c]);
            if !unchanged {
                retire.push(name.clone());
            }
        }
        let mut add: Vec<usize> = Vec::new();
        for (t, name) in target.class_names().iter().enumerate() {
            let unchanged = base
                .class_id(name)
                .is_some_and(|b| base_keys[b] == target_keys[t]);
            if !unchanged {
                add.push(t);
            }
        }
        // Application order is survivors-then-adds; if that is not the
        // target's class order, replace everything.
        let mut final_names: Vec<&String> = base
            .class_names()
            .iter()
            .filter(|name| !retire.contains(name))
            .collect();
        final_names.extend(add.iter().map(|&t| &target.class_names()[t]));
        if final_names.into_iter().ne(target.class_names()) {
            retire = base.class_names().to_vec();
            add = (0..target.n_classes()).collect();
        }
        if let Some(&empty) = add
            .iter()
            .find(|&&t| target.prepared_class_features(t).is_empty())
        {
            return Err(FhcError::Artifact(format!(
                "cannot diff: target class {:?} has no reference samples",
                target.class_names()[empty]
            )));
        }
        let add_slices = add
            .iter()
            .map(|&t| target.encode_slice(&[t]))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            base_fingerprint: base.fingerprint(),
            target_fingerprint: target.fingerprint(),
            retire_classes: retire,
            add_slices,
        })
    }

    /// Patch `base` (declaring fingerprint `declared`) into the target
    /// set: verify the base matches, retire by name, add each slice's
    /// classes, and return the evolved set with its new declared
    /// fingerprint.
    ///
    /// A fully-held result (every class non-empty) is re-fingerprinted
    /// and must equal the declared target. A *partially*-held base — a
    /// shard worker's sparse slice assembly — cannot be re-fingerprinted
    /// (the fingerprint walks every sample), so there the declared value
    /// is trusted and integrity rides on the per-slice checksums, exactly
    /// as in [`ReferenceSet::from_slices`].
    pub fn apply(
        &self,
        base: &ReferenceSet,
        declared: u64,
    ) -> Result<(ReferenceSet, u64), FhcError> {
        if declared != self.base_fingerprint {
            return Err(FhcError::Artifact(format!(
                "stale base: the delta patches {:#018x}, but the base set declares {declared:#018x}",
                self.base_fingerprint
            )));
        }
        let mut evolved = base.clone();
        for name in &self.retire_classes {
            let class = evolved.class_id(name).ok_or_else(|| {
                FhcError::Artifact(format!(
                    "delta retires class {name:?}, which the base set does not hold"
                ))
            })?;
            evolved.retire_class(class)?;
        }
        for bytes in &self.add_slices {
            let DecodedSlice {
                fingerprint,
                kinds,
                class_names,
                owned,
            } = decode_slice(bytes)?;
            if fingerprint != self.target_fingerprint {
                return Err(FhcError::Artifact(format!(
                    "delta add-slice declares fingerprint {fingerprint:#018x}, \
                     but the delta targets {:#018x}",
                    self.target_fingerprint
                )));
            }
            if kinds != evolved.kinds() {
                return Err(FhcError::Artifact(
                    "delta add-slice has different active feature kinds than the base".into(),
                ));
            }
            for (class, samples) in owned {
                evolved.add_class(class_names[class].clone(), samples)?;
            }
        }
        if evolved.n_classes() == 0 {
            return Err(FhcError::Artifact(
                "the delta retires every class and adds none".into(),
            ));
        }
        let full = (0..evolved.n_classes()).all(|c| !evolved.prepared_class_features(c).is_empty());
        if full {
            let actual = evolved.fingerprint();
            if actual != self.target_fingerprint {
                return Err(FhcError::Artifact(format!(
                    "patched reference set fingerprints to {actual:#018x}, \
                     but the delta declared {:#018x}",
                    self.target_fingerprint
                )));
            }
        }
        Ok((evolved, self.target_fingerprint))
    }

    /// Encode into the checksummed delta container (same container shape
    /// as artifacts and slices: magic, version, length-prefixed payload,
    /// FNV-1a checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.base_fingerprint);
        w.put_u64(self.target_fingerprint);
        w.put_usize(self.retire_classes.len());
        for name in &self.retire_classes {
            w.put_str(name);
        }
        w.put_usize(self.add_slices.len());
        for slice in &self.add_slices {
            w.put_bytes(slice);
        }
        let payload = w.into_bytes();
        let mut out = ByteWriter::new();
        out.put_u64(DELTA_MAGIC);
        out.put_u32(FORMAT_VERSION);
        out.put_bytes(&payload);
        out.put_u64(fnv1a64(&payload));
        out.into_bytes()
    }

    /// Decode a delta container, validating magic, version, checksum, and
    /// every count against the remaining payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, FhcError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_u64().map_err(codec_err)?;
        if magic != DELTA_MAGIC {
            return Err(FhcError::Artifact(format!(
                "bad magic {magic:#018x}: not an artifact delta"
            )));
        }
        let version = r.get_u32().map_err(codec_err)?;
        if version != FORMAT_VERSION {
            return Err(FhcError::Artifact(format!(
                "unsupported delta format version {version} (this build writes {FORMAT_VERSION})"
            )));
        }
        let payload = r.get_bytes().map_err(codec_err)?;
        let checksum = r.get_u64().map_err(codec_err)?;
        r.expect_end().map_err(codec_err)?;
        let actual = fnv1a64(&payload);
        if checksum != actual {
            return Err(FhcError::Artifact(format!(
                "delta checksum mismatch (stored {checksum:#018x}, computed {actual:#018x})"
            )));
        }
        Self::decode_payload(&payload).map_err(codec_err)
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(payload);
        let base_fingerprint = r.get_u64()?;
        let target_fingerprint = r.get_u64()?;
        let n_retire = r.get_usize()?;
        // Every retired name costs at least its 4-byte length prefix.
        if r.remaining() < n_retire.saturating_mul(4) {
            return Err(CodecError::new(format!(
                "delta retires {n_retire} classes but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut retire_classes = Vec::with_capacity(n_retire);
        for _ in 0..n_retire {
            retire_classes.push(r.get_str()?);
        }
        let n_add = r.get_usize()?;
        // Every add slice costs at least its 4-byte length prefix.
        if r.remaining() < n_add.saturating_mul(4) {
            return Err(CodecError::new(format!(
                "delta adds {n_add} slices but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut add_slices = Vec::with_capacity(n_add);
        for _ in 0..n_add {
            add_slices.push(r.get_bytes()?);
        }
        r.expect_end()?;
        Ok(Self {
            base_fingerprint,
            target_fingerprint,
            retire_classes,
            add_slices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FuzzyHashClassifier, PipelineConfig};
    use corpus::{Catalog, CorpusBuilder};

    fn trained() -> (corpus::Corpus, TrainedClassifier) {
        let corpus = CorpusBuilder::new(8).build(&Catalog::paper().scaled(0.02));
        let config = FhcConfig::new().pipeline(PipelineConfig {
            seed: 8,
            forest: mlcore::forest::RandomForestParams {
                n_estimators: 15,
                ..Default::default()
            },
            ..Default::default()
        });
        let classifier = FuzzyHashClassifier::with_config(config)
            .fit(&corpus)
            .expect("fit succeeds");
        (corpus, classifier)
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let (corpus, original) = trained();
        let bytes = original.to_bytes();
        let restored = TrainedClassifier::from_bytes(&bytes).expect("roundtrip decodes");

        assert_eq!(restored.seed(), original.seed());
        assert_eq!(
            restored.confidence_threshold(),
            original.confidence_threshold()
        );
        assert_eq!(restored.known_class_names(), original.known_class_names());
        assert_eq!(restored.feature_kinds(), original.feature_kinds());
        assert_eq!(restored.forest_params(), original.forest_params());
        assert_eq!(restored.threshold_curve(), original.threshold_curve());
        assert_eq!(
            restored.forest().feature_importances(),
            original.forest().feature_importances()
        );

        for spec in corpus.samples().iter().step_by(23) {
            let bytes = corpus.generate_bytes(spec);
            assert_eq!(restored.classify(&bytes), original.classify(&bytes));
        }
    }

    fn slice_reference() -> ReferenceSet {
        use crate::features::SampleFeatures;
        let train = vec![
            SampleFeatures::extract(b"velvet assembler body sample number one"),
            SampleFeatures::extract(b"velvet assembler body sample number two"),
            SampleFeatures::extract(b"openmalaria epidemic simulation payload"),
            SampleFeatures::extract(b"gromacs molecular dynamics trajectory"),
        ];
        ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into(), "Gromacs".into()],
            &train,
            &[0, 0, 1, 2],
            &crate::features::FeatureKind::ALL,
        )
    }

    #[test]
    fn per_class_slices_reassemble_into_an_identical_full_set() {
        let original = slice_reference();
        let slices: Vec<Vec<u8>> = (0..original.n_classes())
            .map(|class| original.encode_slice(&[class]).expect("slice encodes"))
            .collect();
        let (rebuilt, declared) = ReferenceSet::from_slices(&slices).expect("slices assemble");
        assert_eq!(declared, original.fingerprint());
        // Full coverage: the reassembled set re-fingerprints identically.
        assert_eq!(rebuilt.fingerprint(), original.fingerprint());
        assert_eq!(rebuilt.class_names(), original.class_names());
        let query = crate::features::PreparedSampleFeatures::prepare(
            &crate::features::SampleFeatures::extract(b"an unknown probe body"),
        );
        assert_eq!(
            rebuilt.feature_vector_prepared(&query),
            original.feature_vector_prepared(&query)
        );
    }

    #[test]
    fn a_partial_slice_set_keeps_full_geometry_and_scores_only_its_classes() {
        let original = slice_reference();
        let slice = original.encode_slice(&[1]).expect("slice encodes");
        let (sparse, declared) = ReferenceSet::from_slices(&[slice]).expect("one slice assembles");
        assert_eq!(declared, original.fingerprint());
        assert_eq!(sparse.n_classes(), original.n_classes());
        assert_eq!(sparse.n_columns(), original.n_columns());
        assert!(!sparse.prepared_class_features(1).is_empty());
        assert!(sparse.prepared_class_features(0).is_empty());
        assert!(sparse.prepared_class_features(2).is_empty());
        // The owned class scores exactly as the full set does.
        let query = crate::features::PreparedSampleFeatures::prepare(
            &crate::features::SampleFeatures::extract(b"openmalaria-like probe"),
        );
        let full_row = original.feature_vector_prepared(&query);
        let sparse_row = sparse.feature_vector_prepared(&query);
        let kinds = original.kinds().len();
        for k in 0..kinds {
            assert_eq!(
                sparse_row[kinds + k],
                full_row[kinds + k],
                "class 1 column {k}"
            );
        }
    }

    #[test]
    fn malformed_and_mismatched_slices_are_rejected() {
        let original = slice_reference();

        // Argument validation.
        assert!(original.encode_slice(&[]).is_err());
        assert!(original.encode_slice(&[0, 0]).is_err());
        assert!(original.encode_slice(&[99]).is_err());
        assert!(ReferenceSet::from_slices(&[]).is_err());

        // The same class arriving twice.
        let slice = original.encode_slice(&[0]).expect("slice encodes");
        assert!(ReferenceSet::from_slices(&[slice.clone(), slice.clone()]).is_err());

        // A corrupted byte trips the per-slice checksum.
        let mut corrupt = slice.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(ReferenceSet::from_slices(&[corrupt]).is_err());

        // Slices from a different reference set (different fingerprint).
        use crate::features::SampleFeatures;
        let other = ReferenceSet::new(
            vec!["Velvet".into(), "OpenMalaria".into(), "Gromacs".into()],
            &[
                SampleFeatures::extract(b"a completely different training corpus"),
                SampleFeatures::extract(b"with different bytes in every sample"),
                SampleFeatures::extract(b"and therefore a different fingerprint"),
            ],
            &[0, 1, 2],
            &crate::features::FeatureKind::ALL,
        );
        let foreign = other.encode_slice(&[1]).expect("slice encodes");
        assert!(ReferenceSet::from_slices(&[slice, foreign]).is_err());
    }

    fn extract_prepared(bodies: &[&[u8]]) -> Vec<PreparedSampleFeatures> {
        bodies
            .iter()
            .map(|b| PreparedSampleFeatures::prepare(&SampleFeatures::extract(b)))
            .collect()
    }

    #[test]
    fn delta_patches_base_to_target_identically() {
        let base = slice_reference();
        // Target: OpenMalaria retired, Gromacs extended (changed content),
        // Hmmer brand new. A changed class re-travels as retire + add, so
        // only order-preserving mutations stay incremental.
        let mut target = base.clone();
        target.retire_class(1).expect("retire OpenMalaria");
        target
            .add_samples(
                1,
                extract_prepared(&[b"gromacs molecular dynamics second trajectory"]),
            )
            .expect("extend Gromacs");
        target
            .add_class(
                "Hmmer".into(),
                extract_prepared(&[b"hmmer profile hidden markov model search"]),
            )
            .expect("add Hmmer");

        let delta = ArtifactDelta::between(&base, &target).expect("diff");
        // Velvet is untouched, so it must not travel.
        assert_eq!(delta.retire_classes, vec!["OpenMalaria", "Gromacs"]);
        assert_eq!(delta.add_slices.len(), 2, "Gromacs re-add + Hmmer");
        assert_eq!(delta.base_fingerprint, base.fingerprint());
        assert_eq!(delta.target_fingerprint, target.fingerprint());

        // Container round-trip.
        let decoded = ArtifactDelta::decode(&delta.encode()).expect("decode");
        assert_eq!(decoded, delta);

        // Applying reproduces the target exactly.
        let (evolved, declared) = decoded.apply(&base, base.fingerprint()).expect("apply");
        assert_eq!(declared, target.fingerprint());
        assert_eq!(evolved.fingerprint(), target.fingerprint());
        assert_eq!(evolved.class_names(), target.class_names());
        let query = PreparedSampleFeatures::prepare(&SampleFeatures::extract(
            b"a probe resembling nothing in particular",
        ));
        assert_eq!(
            evolved.feature_vector_prepared(&query),
            target.feature_vector_prepared(&query)
        );
    }

    #[test]
    fn delta_between_identical_sets_is_empty() {
        let base = slice_reference();
        let delta = ArtifactDelta::between(&base, &base).expect("diff");
        assert!(delta.retire_classes.is_empty());
        assert!(delta.add_slices.is_empty());
        assert_eq!(delta.base_fingerprint, delta.target_fingerprint);
        let (evolved, _) = delta.apply(&base, base.fingerprint()).expect("apply");
        assert_eq!(evolved.fingerprint(), base.fingerprint());
    }

    #[test]
    fn delta_reorder_falls_back_to_full_replacement() {
        let base = slice_reference();
        // Same content, different class order: survivors cannot reproduce
        // it, so everything must travel.
        let reordered = ReferenceSet::from_prepared_parts(
            vec!["Gromacs".into(), "Velvet".into(), "OpenMalaria".into()],
            vec![
                base.prepared_class_features(2).to_vec(),
                base.prepared_class_features(0).to_vec(),
                base.prepared_class_features(1).to_vec(),
            ],
            base.kinds().to_vec(),
        );
        let delta = ArtifactDelta::between(&base, &reordered).expect("diff");
        assert_eq!(delta.retire_classes.len(), base.n_classes());
        assert_eq!(delta.add_slices.len(), reordered.n_classes());
        let (evolved, _) = delta.apply(&base, base.fingerprint()).expect("apply");
        assert_eq!(evolved.fingerprint(), reordered.fingerprint());
        assert_eq!(evolved.class_names(), reordered.class_names());
    }

    #[test]
    fn stale_or_mismatched_deltas_are_rejected() {
        let base = slice_reference();
        let mut target = base.clone();
        target
            .add_class(
                "Hmmer".into(),
                extract_prepared(&[b"hmmer profile hidden markov model search"]),
            )
            .expect("add Hmmer");
        let delta = ArtifactDelta::between(&base, &target).expect("diff");

        // Stale base: wrong declared fingerprint.
        let stale = delta.apply(&base, base.fingerprint() ^ 1);
        match stale {
            Err(FhcError::Artifact(message)) => {
                assert!(message.contains("stale base"), "got {message:?}")
            }
            other => panic!("expected a stale-base rejection, got {other:?}"),
        }

        // Applying to the wrong set entirely (already-patched target).
        assert!(delta.apply(&target, target.fingerprint()).is_err());

        // A delta retiring a class the base does not hold.
        let bad = ArtifactDelta {
            base_fingerprint: base.fingerprint(),
            target_fingerprint: base.fingerprint(),
            retire_classes: vec!["NotAClass".into()],
            add_slices: Vec::new(),
        };
        assert!(bad.apply(&base, base.fingerprint()).is_err());

        // Container corruption and truncation fail cleanly.
        let good = delta.encode();
        let mut corrupt = good.clone();
        let mid = good.len() / 2;
        corrupt[mid] ^= 0x10;
        assert!(ArtifactDelta::decode(&corrupt).is_err());
        for cut in [0, 4, 8, 12, 20, good.len() / 2, good.len() - 1] {
            assert!(ArtifactDelta::decode(&good[..cut]).is_err(), "cut {cut}");
        }

        // Bad magic / version.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(ArtifactDelta::decode(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[8] = 0xEE;
        assert!(ArtifactDelta::decode(&bad_version).is_err());
    }

    /// Re-encode a classifier in the retired version-1 layout (original
    /// hashes only, no prepared index) to prove the compat path keeps
    /// loading old artifacts.
    fn encode_v1_bytes(classifier: &TrainedClassifier) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(classifier.seed);
        w.put_f64(classifier.confidence_threshold);
        let kinds = classifier.reference.kinds();
        w.put_usize(kinds.len());
        for &kind in kinds {
            w.put_u8(encode_kind(kind));
        }
        let reference = &classifier.reference;
        w.put_usize(reference.n_classes());
        for class in 0..reference.n_classes() {
            w.put_str(&reference.class_names()[class]);
            let samples = reference.class_features(class);
            w.put_usize(samples.len());
            for features in samples {
                encode_hash(&mut w, &features.file);
                encode_hash(&mut w, &features.strings);
                match &features.symbols {
                    None => w.put_bool(false),
                    Some(hash) => {
                        w.put_bool(true);
                        encode_hash(&mut w, hash);
                    }
                }
            }
        }
        classifier.forest_params.encode(&mut w);
        classifier.forest.encode(&mut w);
        w.put_usize(classifier.threshold_curve.len());
        for point in &classifier.threshold_curve {
            w.put_f64(point.threshold);
            w.put_f64(point.micro_f1);
            w.put_f64(point.macro_f1);
            w.put_f64(point.weighted_f1);
        }
        let payload = w.into_bytes();
        let mut out = ByteWriter::new();
        out.put_u64(MAGIC);
        out.put_u32(1);
        out.put_bytes(&payload);
        out.put_u64(fnv1a64(&payload));
        out.into_bytes()
    }

    #[test]
    fn version_1_artifacts_still_load_and_predict_identically() {
        let (corpus, original) = trained();
        let v1_bytes = encode_v1_bytes(&original);
        let restored = TrainedClassifier::from_bytes(&v1_bytes).expect("v1 artifact loads");

        assert_eq!(restored.seed(), original.seed());
        assert_eq!(restored.known_class_names(), original.known_class_names());
        for spec in corpus.samples().iter().step_by(31) {
            let bytes = corpus.generate_bytes(spec);
            assert_eq!(restored.classify(&bytes), original.classify(&bytes));
        }
        // Re-saving a v1-loaded classifier upgrades it to the current format
        // with an identical prepared index.
        assert_eq!(restored.to_bytes(), original.to_bytes());
    }

    /// Re-encode a classifier in the retired version-2 layout (prepared
    /// index with raw `u64` window-key sequences) to prove the compat path
    /// keeps loading v2 artifacts.
    fn encode_v2_bytes(classifier: &TrainedClassifier) -> Vec<u8> {
        fn encode_prepared_hash_v2(w: &mut ByteWriter, prepared: &PreparedHash) {
            encode_hash(w, prepared.hash());
            w.put_str(prepared.primary().eliminated());
            w.put_u64_seq(prepared.primary().keys());
            w.put_str(prepared.double().eliminated());
            w.put_u64_seq(prepared.double().keys());
        }
        let mut w = ByteWriter::new();
        w.put_u64(classifier.seed);
        w.put_f64(classifier.confidence_threshold);
        let kinds = classifier.reference.kinds();
        w.put_usize(kinds.len());
        for &kind in kinds {
            w.put_u8(encode_kind(kind));
        }
        let reference = &classifier.reference;
        w.put_usize(reference.n_classes());
        for class in 0..reference.n_classes() {
            w.put_str(&reference.class_names()[class]);
            let samples = reference.prepared_class_features(class);
            w.put_usize(samples.len());
            for features in samples {
                encode_prepared_hash_v2(&mut w, &features.file);
                encode_prepared_hash_v2(&mut w, &features.strings);
                match &features.symbols {
                    None => w.put_bool(false),
                    Some(prepared) => {
                        w.put_bool(true);
                        encode_prepared_hash_v2(&mut w, prepared);
                    }
                }
            }
        }
        classifier.forest_params.encode(&mut w);
        classifier.forest.encode(&mut w);
        w.put_usize(classifier.threshold_curve.len());
        for point in &classifier.threshold_curve {
            w.put_f64(point.threshold);
            w.put_f64(point.micro_f1);
            w.put_f64(point.macro_f1);
            w.put_f64(point.weighted_f1);
        }
        let payload = w.into_bytes();
        let mut out = ByteWriter::new();
        out.put_u64(MAGIC);
        out.put_u32(2);
        out.put_bytes(&payload);
        out.put_u64(fnv1a64(&payload));
        out.into_bytes()
    }

    #[test]
    fn version_2_artifacts_still_load_and_resave_upgrades() {
        let (corpus, original) = trained();
        let v2_bytes = encode_v2_bytes(&original);
        assert_eq!(v2_bytes[8], 2);
        let restored = TrainedClassifier::from_bytes(&v2_bytes).expect("v2 artifact loads");

        assert_eq!(restored.seed(), original.seed());
        assert_eq!(restored.known_class_names(), original.known_class_names());
        for spec in corpus.samples().iter().step_by(31) {
            let bytes = corpus.generate_bytes(spec);
            assert_eq!(restored.classify(&bytes), original.classify(&bytes));
        }
        // Round-trip equivalence: re-saving a v2-loaded classifier upgrades
        // it to the current delta-encoded format byte-identically.
        assert_eq!(restored.to_bytes(), original.to_bytes());
        // And the delta encoding is why v3 exists: the same model, smaller.
        assert!(
            original.to_bytes().len() < v2_bytes.len(),
            "v3 ({} bytes) must be smaller than v2 ({} bytes)",
            original.to_bytes().len(),
            v2_bytes.len()
        );
    }

    #[test]
    fn format_version_is_bumped_for_the_delta_keys() {
        assert_eq!(FORMAT_VERSION, 3);
        assert_eq!(MIN_SUPPORTED_VERSION, 1);
        let (_, original) = trained();
        // Byte 8 of the container is the version field.
        assert_eq!(original.to_bytes()[8], 3);
    }

    #[test]
    fn corrupt_bytes_are_rejected_cleanly() {
        let (_, original) = trained();
        let good = original.to_bytes();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            TrainedClassifier::from_bytes(&bad),
            Err(FhcError::Artifact(_))
        ));

        // Unsupported version.
        let mut bad = good.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            TrainedClassifier::from_bytes(&bad),
            Err(FhcError::Artifact(_))
        ));

        // Payload corruption must trip the checksum.
        let mut bad = good.clone();
        let mid = good.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            TrainedClassifier::from_bytes(&bad),
            Err(FhcError::Artifact(_))
        ));

        // Truncations at every region boundary fail cleanly.
        for cut in [0, 4, 8, 12, 40, good.len() / 2, good.len() - 1] {
            assert!(
                TrainedClassifier::from_bytes(&good[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (corpus, original) = trained();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fhc-artifact-test-{}.fhc", std::process::id()));
        original.save(&path).expect("save succeeds");
        let restored = TrainedClassifier::load(&path).expect("load succeeds");
        std::fs::remove_file(&path).ok();

        let spec = &corpus.samples()[1];
        let sample = corpus.generate_bytes(spec);
        assert_eq!(restored.classify(&sample), original.classify(&sample));
    }

    #[test]
    fn artifacts_open_under_any_backend_with_identical_predictions() {
        use crate::backend::BackendConfig;
        let (corpus, original) = trained();
        let bytes = original.to_bytes();
        let baseline = TrainedClassifier::from_bytes(&bytes).expect("decode");
        assert_eq!(baseline.backend_config(), BackendConfig::Indexed);

        let probes: Vec<Vec<u8>> = corpus
            .samples()
            .iter()
            .step_by(37)
            .map(|s| corpus.generate_bytes(s))
            .collect();
        for backend in [
            BackendConfig::Scan,
            BackendConfig::Sharded { shards: 2 },
            BackendConfig::Sharded { shards: 0 },
        ] {
            let config = FhcConfig::new().backend(backend.clone());
            let opened =
                TrainedClassifier::from_bytes_with(&bytes, &config).expect("decode with backend");
            assert_eq!(opened.backend_config(), backend);
            for probe in &probes {
                assert_eq!(
                    opened.classify(probe),
                    baseline.classify(probe),
                    "backend {backend} diverged"
                );
            }
            // The backend is runtime-only: re-encoding under any backend is
            // byte-identical, so the v2 format is unchanged.
            assert_eq!(opened.to_bytes(), bytes);
        }

        // And the same through the filesystem entry point.
        let path = std::env::temp_dir().join(format!(
            "fhc-artifact-backend-test-{}.fhc",
            std::process::id()
        ));
        original.save(&path).expect("save");
        let sharded = TrainedClassifier::load_with(
            &path,
            &FhcConfig::new().backend(BackendConfig::Sharded { shards: 3 }),
        )
        .expect("load_with");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            sharded.backend_config(),
            BackendConfig::Sharded { shards: 3 }
        );
        assert_eq!(sharded.classify(&probes[0]), baseline.classify(&probes[0]));
    }

    #[test]
    fn missing_file_is_io_error() {
        let missing = std::env::temp_dir().join("fhc-definitely-missing-artifact.fhc");
        assert!(matches!(
            TrainedClassifier::load(&missing),
            Err(FhcError::Io(_))
        ));
    }
}
