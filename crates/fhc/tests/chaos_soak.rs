//! The seeded chaos soak (see `fhc::chaos`): hundreds of rounds of
//! deterministic fault injection against the in-process serving stacks.
//!
//! Lives in its own integration-test binary on purpose: the failpoint
//! registry is process-global, so the soak must own the whole process —
//! no other test may run beside it. Compiled (and run) only with
//! `cargo test -p fhc --features failpoints --test chaos_soak`.

#![cfg(feature = "failpoints")]

use fhc::chaos::{run, ChaosConfig};

#[test]
fn two_hundred_seeded_rounds_stay_typed_and_converge() {
    let config = ChaosConfig {
        seed: 0xC4A05,
        rounds: 200,
        queries: 5,
        verbose: false,
    };
    let report = run(&config).unwrap_or_else(|violation| panic!("{violation}"));
    assert_eq!(report.rounds, config.rounds, "every round must complete");
    // A soak that never observed an injected fault proves nothing: the
    // schedules must actually have fired typed errors somewhere across
    // 200 rounds.
    assert!(
        report.typed_errors > 0,
        "no fault ever surfaced across {} rounds (seed {})",
        config.rounds,
        config.seed
    );
    // And most traffic still flowed: faults are injections, not an
    // outage. The exact split is seed-dependent; the floor is loose.
    assert!(
        report.clean_rows > report.rounds,
        "suspiciously few clean rows ({}) for {} rounds (seed {})",
        report.clean_rows,
        config.rounds,
        config.seed
    );
    println!(
        "chaos soak: {} rounds, {} clean rows, {} typed errors, {} refused connects",
        report.rounds, report.clean_rows, report.typed_errors, report.refused_connects
    );
}
