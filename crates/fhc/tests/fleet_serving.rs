//! End-to-end loopback test of fleet serving across real daemon processes.
//!
//! Trains a small classifier, saves the artifact, and drives
//! `BackendConfig::Fleet` against real `fhc-shardd` processes on loopback
//! TCP. Covers the three failure-semantics rows the fleet promises:
//! killing a primary with a replica behind it must be invisible (hedged
//! failover, byte-identical predictions, zero surfaced errors); killing a
//! shard with no replica must surface as a typed `FhcError::Net`, never a
//! wrong or partial prediction; and a `--diskless` worker — seeded
//! entirely over the wire by reference push — must serve byte-identical
//! predictions, including after being killed and restarted on the same
//! address (the rejoin path: backoff gate, redial, re-push). This is the
//! test CI runs explicitly so the fleet path cannot silently rot.

use corpus::{Catalog, CorpusBuilder};
use fhc::backend::BackendConfig;
use fhc::config::FhcConfig;
use fhc::error::FhcError;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::{Prediction, TrainedClassifier};
use fhc::shardnet::{Endpoint, FleetShard, FleetTopology};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Scrape the bound address from the daemon's announcement line
/// ("fhc-shardd listening on ADDR ...").
fn scrape_endpoint(child: &mut Child) -> Endpoint {
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    addr.parse::<Endpoint>()
        .unwrap_or_else(|e| panic!("bad announced address {addr:?}: {e}"))
}

/// Spawn one artifact-loaded `fhc-shardd` on an OS-assigned loopback port,
/// serving every class (the fleet client assigns partitions over the wire).
fn spawn_shardd(artifact: &std::path::Path) -> (Child, Endpoint) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fhc-shardd"))
        .arg("--artifact")
        .arg(artifact)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-shardd");
    let endpoint = scrape_endpoint(&mut child);
    (child, endpoint)
}

/// Spawn one `fhc-shardd --diskless` on `addr` ("127.0.0.1:0" for an
/// OS-assigned port): no artifact on disk, seeded over the wire by push.
fn spawn_diskless(addr: &str) -> (Child, Endpoint) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fhc-shardd"))
        .arg("--diskless")
        .arg("--listen")
        .arg(addr)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-shardd --diskless");
    let endpoint = scrape_endpoint(&mut child);
    (child, endpoint)
}

struct KillOnDrop(Vec<Child>);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Trained {
    trained: TrainedClassifier,
    config: FhcConfig,
    artifact: std::path::PathBuf,
    batch: Vec<(String, Vec<u8>)>,
    expected: Vec<(String, Prediction)>,
}

/// Train once, save the artifact, and precompute the reference
/// predictions every fleet variant must match byte-for-byte.
fn train(tag: &str) -> Trained {
    let corpus = CorpusBuilder::new(53).build(&Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 53,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let trained = FuzzyHashClassifier::with_config(config.clone())
        .fit(&corpus)
        .expect("fit succeeds");
    let artifact = std::env::temp_dir().join(format!("fhc-fleet-{tag}-{}.fhc", std::process::id()));
    trained.save(&artifact).expect("save artifact");
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(29)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    assert!(batch.len() >= 4, "need a real batch");
    let expected = trained.classify_batch(&batch);
    Trained {
        trained,
        config,
        artifact,
        batch,
        expected,
    }
}

#[test]
fn a_killed_primary_fails_over_invisibly_and_a_bare_shard_loss_is_typed() {
    let t = train("failover");

    // Shard 0 has a replica; shard 1 stands alone.
    let (primary, primary_ep) = spawn_shardd(&t.artifact);
    let (replica, replica_ep) = spawn_shardd(&t.artifact);
    let (bare, bare_ep) = spawn_shardd(&t.artifact);
    let mut guard = KillOnDrop(vec![primary, replica, bare]);

    let topology = FleetTopology::new(vec![
        FleetShard {
            primary: primary_ep,
            replicas: vec![replica_ep],
        },
        FleetShard::solo(bare_ep),
    ]);
    let fleet_config = t.config.backend(BackendConfig::Fleet {
        topology: topology.clone(),
        tenant: None,
    });
    let served = TrainedClassifier::load_with(&t.artifact, &fleet_config)
        .expect("artifact opens against the running fleet");
    assert_eq!(
        served.backend_config(),
        BackendConfig::Fleet {
            topology,
            tenant: None,
        }
    );

    // Healthy fleet: byte-identical to the in-process backend.
    assert_eq!(
        served.try_classify_batch(&t.batch).expect("fleet healthy"),
        t.expected
    );

    // Kill the primary. Its replica must absorb every query: identical
    // predictions, zero surfaced errors.
    guard.0[0].kill().expect("kill primary");
    guard.0[0].wait().expect("reap primary");
    assert_eq!(
        served
            .try_classify_batch(&t.batch)
            .expect("replica absorbs the primary loss"),
        t.expected
    );

    // Kill the replica-less shard: the typed error contract is unchanged —
    // a degraded fleet answers correctly or fails loudly, never wrongly.
    guard.0[2].kill().expect("kill bare shard");
    guard.0[2].wait().expect("reap bare shard");
    let mut saw_typed_error = false;
    for (name, bytes) in t.batch.iter().take(4) {
        match served.try_classify(bytes) {
            Ok(prediction) => {
                let (_, expected) = t
                    .expected
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("in batch");
                assert_eq!(&prediction, expected, "degraded but wrong: {name}");
            }
            Err(FhcError::Net(_)) => saw_typed_error = true,
            Err(other) => panic!("expected FhcError::Net, got {other}"),
        }
    }
    assert!(
        saw_typed_error,
        "losing a replica-less shard must surface as a typed error"
    );

    drop(guard);
    std::fs::remove_file(&t.artifact).ok();
}

#[test]
fn a_diskless_worker_is_seeded_by_push_and_rejoins_after_a_restart() {
    let t = train("diskless");

    // Two diskless daemons: no artifact on disk anywhere near them. The
    // fleet client pushes each one only its partition's reference slices.
    let (d0, ep0) = spawn_diskless("127.0.0.1:0");
    let (d1, ep1) = spawn_diskless("127.0.0.1:0");
    let rejoin_addr = match &ep1 {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("expected a TCP endpoint, got {other}"),
    };
    let mut guard = KillOnDrop(vec![d0, d1]);

    let topology = FleetTopology::new(vec![FleetShard::solo(ep0), FleetShard::solo(ep1)]);
    let fleet_config = t.config.backend(BackendConfig::Fleet {
        topology,
        tenant: None,
    });
    let served = TrainedClassifier::load_with(&t.artifact, &fleet_config)
        .expect("connect seeds both diskless workers by push");
    assert_eq!(
        served.try_classify_batch(&t.batch).expect("fleet healthy"),
        t.expected
    );

    // Kill one diskless worker. With no replica its classes are dark, and
    // the fleet must say so with a typed error.
    guard.0[1].kill().expect("kill diskless worker");
    guard.0[1].wait().expect("reap diskless worker");
    match served.try_classify(&t.batch[0].1) {
        Err(FhcError::Net(_)) => {}
        Ok(_) => panic!("half-dark fleet answered instead of erroring"),
        Err(other) => panic!("expected FhcError::Net, got {other}"),
    }

    // Restart it on the same address, memory empty again. The fleet must
    // redial once the backoff gate opens, re-push the slices, and serve
    // byte-identical predictions — no client restart, no artifact on disk.
    let (d1_again, _) = spawn_diskless(&rejoin_addr);
    guard.0.push(d1_again);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match served.try_classify_batch(&t.batch) {
            Ok(predictions) => {
                assert_eq!(predictions, t.expected);
                break;
            }
            Err(FhcError::Net(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(other) => panic!("restarted worker never rejoined: {other}"),
        }
    }

    // The reference never left the client: predictions still match the
    // in-process classifier that trained it.
    assert_eq!(t.trained.classify_batch(&t.batch), t.expected);

    drop(guard);
    std::fs::remove_file(&t.artifact).ok();
}
