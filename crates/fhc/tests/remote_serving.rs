//! End-to-end loopback test of the `fhc-shardd` worker daemon.
//!
//! Trains a small classifier, saves the artifact, spawns two real
//! `fhc-shardd` processes (one per shard of the round-robin partition) on
//! loopback TCP, and serves the same artifact through them via
//! `BackendConfig::Remote`. Predictions must be byte-identical to the
//! in-process indexed backend; killing a daemon mid-serving must surface
//! as a typed error, not a wrong or partial prediction. This is the test
//! CI runs explicitly so the daemon path cannot silently rot.

use corpus::{Catalog, CorpusBuilder};
use fhc::backend::BackendConfig;
use fhc::config::FhcConfig;
use fhc::error::FhcError;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::TrainedClassifier;
use fhc::shardnet::Endpoint;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// Spawn one `fhc-shardd` on an OS-assigned loopback port and scrape the
/// bound address from its announcement line.
fn spawn_shardd(artifact: &std::path::Path, shard: usize, of: usize) -> (Child, Endpoint) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fhc-shardd"))
        .arg("--artifact")
        .arg(artifact)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--shard")
        .arg(format!("{shard}/{of}"))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-shardd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    // "fhc-shardd listening on 127.0.0.1:PORT serving K/N classes ..."
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    let endpoint = addr
        .parse::<Endpoint>()
        .unwrap_or_else(|e| panic!("bad announced address {addr:?}: {e}"));
    (child, endpoint)
}

struct KillOnDrop(Vec<Child>);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn shardd_daemons_serve_byte_identical_predictions_and_die_loudly() {
    // Train once, small but real.
    let corpus = CorpusBuilder::new(47).build(&Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 47,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let trained = FuzzyHashClassifier::with_config(config.clone())
        .fit(&corpus)
        .expect("fit succeeds");
    let artifact = std::env::temp_dir().join(format!("fhc-shardd-test-{}.fhc", std::process::id()));
    trained.save(&artifact).expect("save artifact");

    // Two real daemon processes, one per shard of the 2-way partition.
    let (child0, endpoint0) = spawn_shardd(&artifact, 0, 2);
    let (child1, endpoint1) = spawn_shardd(&artifact, 1, 2);
    let mut guard = KillOnDrop(vec![child0, child1]);

    // Reopen the stored artifact under the remote topology.
    let remote_config = config.backend(BackendConfig::remote([endpoint0, endpoint1]));
    let served = TrainedClassifier::load_with(&artifact, &remote_config)
        .expect("artifact opens against running daemons");
    assert!(matches!(
        served.backend_config(),
        BackendConfig::Remote { .. }
    ));

    // Byte-identical predictions vs the local indexed backend.
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(29)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    assert!(batch.len() >= 4, "need a real batch");
    let expected = trained.classify_batch(&batch);
    let via_daemons = served
        .try_classify_batch(&batch)
        .expect("daemons are healthy");
    assert_eq!(via_daemons, expected);

    // Kill one daemon: serving must degrade to a typed error, never to a
    // wrong or partial prediction.
    guard.0[1].kill().expect("kill shard 1");
    guard.0[1].wait().expect("reap shard 1");
    let mut saw_typed_error = false;
    // The first try may still be answered from the healthy worker plus the
    // dead socket's buffered response; retry a few times — every outcome
    // must be either a correct prediction or a typed network error.
    for (name, bytes) in batch.iter().take(4) {
        match served.try_classify(bytes) {
            Ok(prediction) => {
                let (_, expected_prediction) =
                    expected.iter().find(|(n, _)| n == name).expect("in batch");
                assert_eq!(
                    &prediction, expected_prediction,
                    "degraded but wrong: {name}"
                );
            }
            Err(FhcError::Net(e)) => {
                saw_typed_error = true;
                assert!(e.is_worker_lost(), "expected WorkerLost, got {e}");
            }
            Err(other) => panic!("expected FhcError::Net, got {other}"),
        }
    }
    assert!(
        saw_typed_error,
        "killing a worker must surface as a typed error"
    );

    drop(guard);
    std::fs::remove_file(&artifact).ok();
}
