//! Property-style tests for the shard-serving wire codec.
//!
//! The build environment has no `proptest`, so these drive the same
//! properties with the vendored deterministic rand shims (`ChaCha8Rng`
//! seeded per test): every frame type round-trips through its wire bytes
//! for randomized payloads, and malformed inputs — truncations, corrupted
//! bytes, unknown tags, oversized length prefixes, wrong protocol versions
//! — are rejected with typed errors, never panics or silent misparses.

use fhc::features::{PreparedSampleFeatures, SampleFeatures};
use fhc::shardnet::wire::{
    Assign, DeltaAck, Frame, Hello, Overload, PushAck, PushDelta, PushSlice, ScoreBatchRequest,
    ScoreBatchResponse, ScoreRequest, ScoreResponse, MAX_TENANT_LEN, PROTOCOL_VERSION,
};
use fhc::shardnet::NetError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::Cursor;

const CASES: usize = 40;

fn random_classes(rng: &mut ChaCha8Rng, n_classes: usize) -> Vec<usize> {
    (0..n_classes).filter(|_| rng.gen_bool(0.4)).collect()
}

/// A tenant id that passes `wire::valid_tenant`: 1..=64 chars of
/// `[A-Za-z0-9._-]`.
fn random_tenant(rng: &mut ChaCha8Rng) -> String {
    const CHARSET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789._-";
    let len = rng.gen_range(1..MAX_TENANT_LEN + 1);
    (0..len)
        .map(|_| char::from(CHARSET[rng.gen_range(0..CHARSET.len())]))
        .collect()
}

fn random_string(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| char::from(rng.gen_range(b' '..b'~')))
        .collect()
}

fn random_query(rng: &mut ChaCha8Rng) -> PreparedSampleFeatures {
    // Random bytes exercise real hash extraction; random length straddles
    // block-size boundaries. Non-ELF input also exercises the
    // missing-symbols (None) encoding arm.
    let len = rng.gen_range(64usize..8192);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
    PreparedSampleFeatures::prepare(&SampleFeatures::extract(&bytes))
}

fn random_cells(rng: &mut ChaCha8Rng) -> Vec<(u32, f64)> {
    let n_cells = rng.gen_range(0usize..64);
    (0..n_cells)
        .map(|_| {
            (
                rng.gen_range(0u32..1000),
                f64::from(rng.gen_range(0u32..101)),
            )
        })
        .collect()
}

fn random_frame(rng: &mut ChaCha8Rng) -> Frame {
    match rng.gen_range(0u32..13) {
        0 => {
            let n_classes = rng.gen_range(1usize..40);
            Frame::Hello(Hello {
                protocol: rng.gen(),
                features: rng.gen(),
                fingerprint: rng.gen(),
                n_classes,
                n_columns: n_classes * rng.gen_range(1usize..4),
                classes: random_classes(rng, n_classes),
                tenant: random_tenant(rng),
            })
        }
        1 => {
            let n_classes = rng.gen_range(1usize..40);
            Frame::Assign(Assign {
                classes: random_classes(rng, n_classes),
            })
        }
        2 => Frame::ScoreRequest(Box::new(ScoreRequest {
            id: rng.gen(),
            query: random_query(rng),
        })),
        3 => Frame::ScoreResponse(ScoreResponse {
            id: rng.gen(),
            cells: random_cells(rng),
        }),
        4 => Frame::Error(random_string(rng, 200)),
        5 => {
            // Batches stay small here — each query is a real feature
            // extraction and the round-trip suites run dozens of cases.
            let n_queries = rng.gen_range(0usize..4);
            Frame::ScoreBatchRequest(ScoreBatchRequest {
                id: rng.gen(),
                queries: (0..n_queries).map(|_| random_query(rng)).collect(),
            })
        }
        6 => {
            let n_rows = rng.gen_range(0usize..5);
            Frame::ScoreBatchResponse(ScoreBatchResponse {
                id: rng.gen(),
                rows: (0..n_rows).map(|_| random_cells(rng)).collect(),
            })
        }
        7 => {
            let total = rng.gen_range(1u32..64);
            let len = rng.gen_range(0usize..512);
            Frame::PushSlice(PushSlice {
                index: rng.gen_range(0..total),
                total,
                payload: (0..len).map(|_| rng.gen::<u8>()).collect(),
            })
        }
        8 => Frame::PushAck(PushAck {
            fingerprint: rng.gen(),
            classes_loaded: rng.gen_range(0u32..10_000),
        }),
        9 => {
            let total = rng.gen_range(1u32..64);
            let len = rng.gen_range(0usize..512);
            Frame::PushDelta(PushDelta {
                index: rng.gen_range(0..total),
                total,
                payload: (0..len).map(|_| rng.gen::<u8>()).collect(),
            })
        }
        10 => Frame::DeltaAck(DeltaAck {
            fingerprint: rng.gen(),
            classes_added: rng.gen_range(0u32..10_000),
            classes_retired: rng.gen_range(0u32..10_000),
        }),
        11 => Frame::Overload(Overload {
            id: rng.gen(),
            retry_after_ms: rng.gen(),
        }),
        _ => Frame::Shutdown,
    }
}

#[test]
fn every_frame_type_roundtrips_for_random_payloads() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0001);
    let mut seen_tags = [false; 13];
    // Twice the usual case count: with thirteen variants, forty draws
    // leave a realistic chance of missing one and failing the coverage
    // check.
    for case in 0..CASES * 2 {
        let frame = random_frame(&mut rng);
        seen_tags[match &frame {
            Frame::Hello(_) => 0,
            Frame::Assign(_) => 1,
            Frame::ScoreRequest(_) => 2,
            Frame::ScoreResponse(_) => 3,
            Frame::Error(_) => 4,
            Frame::Shutdown => 5,
            Frame::ScoreBatchRequest(_) => 6,
            Frame::ScoreBatchResponse(_) => 7,
            Frame::PushSlice(_) => 8,
            Frame::PushAck(_) => 9,
            Frame::PushDelta(_) => 10,
            Frame::DeltaAck(_) => 11,
            Frame::Overload(_) => 12,
        }] = true;
        let bytes = frame.to_wire_bytes();
        let decoded = Frame::read_from(&mut Cursor::new(&bytes), "test")
            .unwrap_or_else(|e| panic!("case {case}: {frame:?} failed to round-trip: {e}"));
        assert_eq!(decoded, frame, "case {case} diverged");
    }
    assert!(
        seen_tags.iter().all(|&seen| seen),
        "the generator must cover every frame type ({seen_tags:?})"
    );
}

#[test]
fn back_to_back_frames_roundtrip_as_a_stream() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0002);
    let frames: Vec<Frame> = (0..12).map(|_| random_frame(&mut rng)).collect();
    let mut stream = Vec::new();
    for frame in &frames {
        stream.extend_from_slice(&frame.to_wire_bytes());
    }
    let mut cursor = Cursor::new(stream);
    for (i, frame) in frames.iter().enumerate() {
        let decoded = Frame::read_from(&mut cursor, "test").expect("stream frame decodes");
        assert_eq!(&decoded, frame, "frame {i} diverged in the stream");
    }
    assert!(matches!(
        Frame::read_from(&mut cursor, "test"),
        Err(NetError::Io { .. })
    ));
}

#[test]
fn truncated_frames_never_panic_and_always_error() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0003);
    for _ in 0..CASES {
        let bytes = random_frame(&mut rng).to_wire_bytes();
        // Every cut, not just random ones: a frame must be all-or-nothing.
        for cut in 0..bytes.len() {
            match Frame::read_from(&mut Cursor::new(&bytes[..cut]), "test") {
                Err(NetError::Io { .. }) => {}
                other => panic!("cut at {cut}/{} gave {other:?}", bytes.len()),
            }
        }
    }
}

#[test]
fn corrupted_frames_are_rejected_with_typed_errors() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0004);
    for case in 0..CASES {
        let frame = random_frame(&mut rng);
        let bytes = frame.to_wire_bytes();
        let flip = rng.gen_range(0..bytes.len());
        let mut bad = bytes.clone();
        bad[flip] ^= 1 << rng.gen_range(0u32..8);
        // The frame checksum covers tag, length, and payload — and a flip
        // in the checksum itself mismatches by construction — so *every*
        // single-bit corruption must surface as a typed error.
        match Frame::read_from(&mut Cursor::new(&bad), "test") {
            Err(NetError::Frame { .. } | NetError::Io { .. } | NetError::Protocol { .. }) => {}
            other => panic!("case {case}: flip at byte {flip} gave {other:?}"),
        }
    }
}

#[test]
fn malformed_payloads_are_protocol_errors() {
    // Unknown tag.
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 200, b"whatever").unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A Hello whose class list overruns its own class count.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(PROTOCOL_VERSION);
    payload.put_u32(0); // features
    payload.put_u64(7);
    payload.put_usize(2); // n_classes
    payload.put_usize(6); // n_columns
    payload.put_usize(1); // one class entry...
    payload.put_usize(5); // ...with an out-of-range id
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 1, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // Trailing garbage after a structurally complete payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_str("an error message");
    payload.put_u8(0xEE);
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 5, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A score response whose cell count overruns the payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(1); // id
    payload.put_u32(u32::MAX); // cells "to follow"
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 4, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A batch request whose query count overruns the payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(1); // id
    payload.put_u32(u32::MAX); // queries "to follow"
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 7, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A batch response whose row count overruns the payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(1); // id
    payload.put_u32(u32::MAX); // rows "to follow"
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 8, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A push slice claiming index >= total (out of sequence).
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(3); // index
    payload.put_u32(3); // total
    payload.put_bytes(b"slice bytes");
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 9, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A push slice claiming a zero-length sequence.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(0); // index
    payload.put_u32(0); // total
    payload.put_bytes(b"");
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 9, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A push slice whose blob length overruns the payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(0); // index
    payload.put_u32(1); // total
    payload.put_u32(u32::MAX); // blob bytes "to follow"
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 9, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A batch response whose *inner* cell count overruns the payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(1); // id
    payload.put_u32(1); // one row...
    payload.put_u32(u32::MAX); // ...claiming u32::MAX cells
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 8, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A push delta claiming index >= total (out of sequence).
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(2); // index
    payload.put_u32(2); // total
    payload.put_bytes(b"delta bytes");
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 11, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A push delta claiming a zero-length sequence.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(0); // index
    payload.put_u32(0); // total
    payload.put_bytes(b"");
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 11, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A push delta whose blob length overruns the payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(0); // index
    payload.put_u32(1); // total
    payload.put_u32(u32::MAX); // blob bytes "to follow"
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 11, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // A delta ack with trailing garbage after its fixed-size payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(7); // fingerprint
    payload.put_u32(1); // classes added
    payload.put_u32(1); // classes retired
    payload.put_u8(0xEE);
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 12, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // An overload rejection with trailing garbage after its fixed-size
    // payload.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(9); // id
    payload.put_u32(40); // retry_after_ms
    payload.put_u8(0xEE);
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 13, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));

    // An overload rejection cut short of its retry hint.
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u64(9); // id, but no retry_after_ms follows
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 13, payload.as_bytes()).unwrap();
    assert!(matches!(
        Frame::read_from(&mut Cursor::new(bytes), "test"),
        Err(NetError::Protocol { .. })
    ));
}

#[test]
fn every_bit_corruption_of_small_frames_is_typed() {
    // The random-flip suite samples large frames; here every bit of each
    // small frame's encoding is flipped in turn, exhaustively. The frame
    // checksum covers tag, length, and payload, so no single-bit flip may
    // ever decode — silently misparsing an Overload (or mangling its retry
    // hint) would turn load shedding into data corruption.
    let frames = [
        Frame::Overload(Overload {
            id: 0xDEAD_BEEF,
            retry_after_ms: 25,
        }),
        Frame::Shutdown,
        Frame::Error("shed".into()),
        Frame::PushAck(PushAck {
            fingerprint: 7,
            classes_loaded: 3,
        }),
    ];
    for frame in &frames {
        let bytes = frame.to_wire_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                match Frame::read_from(&mut Cursor::new(&bad), "test") {
                    Err(
                        NetError::Frame { .. } | NetError::Io { .. } | NetError::Protocol { .. },
                    ) => {}
                    other => panic!("{frame:?}: flip {byte}.{bit} gave {other:?}"),
                }
            }
        }
    }
}

/// A raw Hello frame wrapping `tenant` verbatim, bypassing the encoder's
/// type-level guarantees so malformed ids reach the decoder.
fn raw_hello_with_tenant(tenant: &str) -> Vec<u8> {
    let mut payload = hpcutil::ByteWriter::new();
    payload.put_u32(PROTOCOL_VERSION);
    payload.put_u32(0); // features
    payload.put_u64(7); // fingerprint
    payload.put_usize(1); // n_classes
    payload.put_usize(3); // n_columns
    payload.put_usize(1); // one class entry
    payload.put_usize(0);
    payload.put_str(tenant);
    let mut bytes = Vec::new();
    hpcutil::write_frame(&mut bytes, 1, payload.as_bytes()).unwrap();
    bytes
}

#[test]
fn malformed_tenant_ids_are_rejected_on_decode() {
    // Every structurally broken shape: empty, over-long, and each
    // forbidden character class.
    let over_long = "x".repeat(MAX_TENANT_LEN + 1);
    let fixed: Vec<String> = vec![
        String::new(),
        over_long,
        "has space".into(),
        "sneaky/../path".into(),
        "new\nline".into(),
        "nul\0byte".into(),
        "ünïcode".into(),
    ];
    for tenant in &fixed {
        match Frame::read_from(&mut Cursor::new(raw_hello_with_tenant(tenant)), "test") {
            Err(NetError::Protocol { detail, .. }) => assert!(
                detail.contains("malformed tenant"),
                "error names the violation for {tenant:?}: {detail}"
            ),
            other => panic!("tenant {tenant:?} decoded as {other:?}"),
        }
    }

    // Randomized: a valid tenant with one character replaced by a
    // forbidden byte must always be rejected.
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0006);
    const FORBIDDEN: &[u8] = b" /\\\t\n\r:;@#$%^&*()+=[]{}|<>?,'\"`~";
    for _ in 0..CASES {
        let mut tenant = random_tenant(&mut rng).into_bytes();
        let at = rng.gen_range(0..tenant.len());
        tenant[at] = FORBIDDEN[rng.gen_range(0..FORBIDDEN.len())];
        let tenant = String::from_utf8(tenant).expect("single-byte substitution stays UTF-8");
        match Frame::read_from(&mut Cursor::new(raw_hello_with_tenant(&tenant)), "test") {
            Err(NetError::Protocol { .. }) => {}
            other => panic!("corrupted tenant {tenant:?} decoded as {other:?}"),
        }
    }

    // And valid ids survive: the round-trip suite covers random ones, but
    // pin the boundary lengths explicitly.
    for tenant in ["a", &"t".repeat(MAX_TENANT_LEN)] {
        match Frame::read_from(&mut Cursor::new(raw_hello_with_tenant(tenant)), "test") {
            Ok(Frame::Hello(hello)) => assert_eq!(hello.tenant, tenant),
            other => panic!("valid tenant {tenant:?} gave {other:?}"),
        }
    }
}

#[test]
fn delta_payloads_reject_every_cut_and_random_corruption() {
    use fhc::artifact::ArtifactDelta;
    use fhc::features::FeatureKind;
    use fhc::similarity::ReferenceSet;

    // A real delta between two small reference sets: retire one class,
    // append another.
    let train = vec![
        SampleFeatures::extract(b"the velvet assembler executable body one"),
        SampleFeatures::extract(b"an openmalaria simulation binary payload"),
    ];
    let base = ReferenceSet::new(
        vec!["Velvet".into(), "OpenMalaria".into()],
        &train,
        &[0, 1],
        &FeatureKind::ALL,
    );
    let target_train = vec![
        train[0].clone(),
        SampleFeatures::extract(b"a gromacs molecular dynamics trajectory dump"),
    ];
    let target = ReferenceSet::new(
        vec!["Velvet".into(), "Gromacs".into()],
        &target_train,
        &[0, 1],
        &FeatureKind::ALL,
    );
    let delta = ArtifactDelta::between(&base, &target).expect("cut a delta");
    let encoded = delta.encode();
    assert_eq!(
        ArtifactDelta::decode(&encoded).expect("round-trip"),
        delta,
        "the delta codec must round-trip before corruption testing means anything"
    );

    // Every truncation point is rejected; none panics.
    for cut in 0..encoded.len() {
        assert!(
            ArtifactDelta::decode(&encoded[..cut]).is_err(),
            "cut at {cut}/{} decoded",
            encoded.len()
        );
    }

    // Random single-bit corruption is caught by the payload checksum.
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0007);
    for case in 0..CASES {
        let mut bad = encoded.clone();
        let flip = rng.gen_range(0..bad.len());
        bad[flip] ^= 1 << rng.gen_range(0u32..8);
        assert!(
            ArtifactDelta::decode(&bad).is_err(),
            "case {case}: flip at byte {flip} decoded"
        );
    }
}

#[test]
fn random_garbage_never_panics_the_reader() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4A3_0005);
    for _ in 0..CASES * 5 {
        let len = rng.gen_range(0usize..300);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        // Any result is fine — including an accidental parse of tiny valid
        // frames — as long as nothing panics or allocates absurdly.
        let _ = Frame::read_from(&mut Cursor::new(&garbage), "test");
    }
}
