//! End-to-end loopback tests of multi-tenant serving and delta updates
//! across real daemon processes.
//!
//! Covers the two serving-equivalence promises the tenant subsystem
//! makes: (1) two tenants behind **one** `fhc-shardd` are isolated — each
//! client sees exactly the predictions its own artifact computes locally,
//! an unregistered tenant is refused as a typed `NetError::Tenant` naming
//! it, and a tenant/artifact mismatch is a typed handshake error, never a
//! wrong row; (2) a worker patched over the wire by `ArtifactDelta`
//! (`PushDelta`) serves byte-identical predictions alongside a full-push
//! seeded worker, and the `fhc-artifact diff`/`apply` CLI reproduces the
//! evolved artifact byte-for-byte. This is the test CI runs explicitly so
//! the tenant and delta paths cannot silently rot.

use corpus::{Catalog, CorpusBuilder};
use fhc::artifact::ArtifactDelta;
use fhc::backend::{AnyBackend, BackendConfig};
use fhc::config::FhcConfig;
use fhc::error::FhcError;
use fhc::features::{PreparedSampleFeatures, SampleFeatures};
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::{Prediction, TrainedClassifier};
use fhc::shardnet::{Endpoint, FleetShard, FleetTopology, NetError};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// Scrape the bound address from the daemon's announcement line
/// ("fhc-shardd listening on ADDR ...").
fn scrape_endpoint(child: &mut Child) -> Endpoint {
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    addr.parse::<Endpoint>()
        .unwrap_or_else(|e| panic!("bad announced address {addr:?}: {e}"))
}

/// Spawn one `fhc-shardd` with the given extra arguments on an
/// OS-assigned loopback port.
fn spawn_shardd(args: &[std::ffi::OsString]) -> (Child, Endpoint) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fhc-shardd"))
        .args(args)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-shardd");
    let endpoint = scrape_endpoint(&mut child);
    (child, endpoint)
}

struct KillOnDrop(Vec<Child>);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Trained {
    trained: TrainedClassifier,
    artifact: std::path::PathBuf,
    batch: Vec<(String, Vec<u8>)>,
    expected: Vec<(String, Prediction)>,
}

/// Train one small classifier (seeded, so tenants differ), save its
/// artifact, and precompute the predictions serving must match.
fn train(tag: &str, seed: u64) -> Trained {
    let corpus = CorpusBuilder::new(seed).build(&Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let trained = FuzzyHashClassifier::with_config(config)
        .fit(&corpus)
        .expect("fit succeeds");
    let artifact =
        std::env::temp_dir().join(format!("fhc-tenant-{tag}-{}.fhc", std::process::id()));
    trained.save(&artifact).expect("save artifact");
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(29)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    assert!(batch.len() >= 4, "need a real batch");
    let expected = trained.classify_batch(&batch);
    Trained {
        trained,
        artifact,
        batch,
        expected,
    }
}

/// A `remote:ADDR;tenant=NAME` backend spec against one daemon.
fn tenant_config(endpoint: &Endpoint, tenant: &str) -> FhcConfig {
    let spec = format!("remote:{endpoint};tenant={tenant}");
    FhcConfig::new().backend(spec.parse::<BackendConfig>().expect("spec parses"))
}

#[test]
fn two_tenants_behind_one_daemon_are_isolated_and_cross_tenant_is_typed() {
    let acme = train("acme", 53);
    let beta = train("beta", 61);
    assert_ne!(
        acme.trained.reference().fingerprint(),
        beta.trained.reference().fingerprint(),
        "the tenants must serve different artifacts for isolation to mean anything"
    );

    // ONE daemon serving both tenants (and no default tenant at all).
    let mut tenant_args = Vec::new();
    for (name, t) in [("acme", &acme), ("beta", &beta)] {
        tenant_args.push("--tenant".into());
        let mut spec = std::ffi::OsString::from(format!("{name}="));
        spec.push(&t.artifact);
        tenant_args.push(spec);
    }
    let (daemon, endpoint) = spawn_shardd(&tenant_args);
    let _guard = KillOnDrop(vec![daemon]);

    // Each tenant's client sees exactly its own artifact's predictions.
    for (name, t) in [("acme", &acme), ("beta", &beta)] {
        let served = TrainedClassifier::load_with(&t.artifact, &tenant_config(&endpoint, name))
            .unwrap_or_else(|e| panic!("tenant {name} opens against the daemon: {e}"));
        assert_eq!(
            served
                .try_classify_batch(&t.batch)
                .unwrap_or_else(|e| panic!("tenant {name} serves: {e}")),
            t.expected,
            "tenant {name} must return its own artifact's predictions"
        );
    }

    // An unregistered tenant is refused with a typed error naming it.
    match TrainedClassifier::load_with(&acme.artifact, &tenant_config(&endpoint, "ghost")) {
        Err(FhcError::Net(NetError::Tenant { tenant, detail, .. })) => {
            assert_eq!(tenant, "ghost");
            assert!(
                detail.contains("acme") && detail.contains("beta"),
                "the refusal should name the served tenants: {detail}"
            );
        }
        other => panic!("expected a typed tenant rejection, got {other:?}"),
    }

    // Selecting one tenant while expecting another tenant's artifact is a
    // typed handshake error (fingerprint mismatch), never a wrong row.
    match TrainedClassifier::load_with(&beta.artifact, &tenant_config(&endpoint, "acme")) {
        Err(FhcError::Net(NetError::Handshake { detail, .. })) => {
            assert!(
                detail.contains("fingerprint"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("expected a typed handshake rejection, got {other:?}"),
    }

    // A tenant-unaware client expects the default tenant; this daemon
    // serves none, so the greeting mismatch is a typed tenant error too.
    let plain = FhcConfig::new().backend(BackendConfig::Remote {
        endpoints: vec![endpoint],
        tenant: None,
    });
    match TrainedClassifier::load_with(&acme.artifact, &plain) {
        Err(FhcError::Net(NetError::Tenant { tenant, .. })) => assert_eq!(tenant, "default"),
        other => panic!("expected a typed tenant rejection, got {other:?}"),
    }

    std::fs::remove_file(&acme.artifact).ok();
    std::fs::remove_file(&beta.artifact).ok();
}

#[test]
fn a_gateway_fronts_one_tenant_of_a_multi_tenant_daemon() {
    let acme = train("gw-acme", 53);
    let beta = train("gw-beta", 61);
    let mut tenant_args = Vec::new();
    for (name, t) in [("acme", &acme), ("beta", &beta)] {
        tenant_args.push("--tenant".into());
        let mut spec = std::ffi::OsString::from(format!("{name}="));
        spec.push(&t.artifact);
        tenant_args.push(spec);
    }
    let (daemon, worker_ep) = spawn_shardd(&tenant_args);

    // The gateway binds to exactly one tenant of the shared daemon.
    let mut gateway = Command::new(env!("CARGO_BIN_EXE_fhc-gateway"))
        .arg("--artifact")
        .arg(&acme.artifact)
        .arg("--tenant")
        .arg("acme")
        .arg("--workers")
        .arg(worker_ep.to_string())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-gateway");
    let front = scrape_endpoint(&mut gateway);
    let _guard = KillOnDrop(vec![daemon, gateway]);

    // The fronted tenant serves its own predictions through two hops.
    let spec = format!("gateway:{front};tenant=acme");
    let config = FhcConfig::new().backend(spec.parse::<BackendConfig>().expect("spec parses"));
    let served =
        TrainedClassifier::load_with(&acme.artifact, &config).expect("open through the gateway");
    assert_eq!(
        served.try_classify_batch(&acme.batch).expect("serves"),
        acme.expected
    );

    // Selecting any other tenant on this gateway is a typed refusal: a
    // gateway fronts exactly one tenant.
    let other = format!("gateway:{front};tenant=beta");
    let config = FhcConfig::new().backend(other.parse::<BackendConfig>().expect("spec parses"));
    match TrainedClassifier::load_with(&beta.artifact, &config) {
        Err(FhcError::Net(NetError::Tenant { tenant, .. })) => assert_eq!(tenant, "beta"),
        other => panic!("expected a typed tenant rejection, got {other:?}"),
    }

    std::fs::remove_file(&acme.artifact).ok();
    std::fs::remove_file(&beta.artifact).ok();
}

#[test]
fn a_delta_patched_worker_serves_byte_identically_and_the_cli_round_trips() {
    let t = train("delta", 53);
    let base = t.trained.reference_shared();

    // Evolve the *last* class in place (order-preserving, so the delta is
    // genuinely incremental: one retire, one re-added slice).
    let mut evolved = (*base).clone();
    let last = base.n_classes() - 1;
    evolved
        .add_samples(
            last,
            vec![PreparedSampleFeatures::prepare(&SampleFeatures::extract(
                b"a freshly observed variant of the final reference class",
            ))],
        )
        .expect("extend the last class");
    let target = Arc::new(evolved);
    let delta = ArtifactDelta::between(&base, &target).expect("diff");
    assert_eq!(delta.add_slices.len(), 1, "one changed class travels");

    // The locally evolved classifier is the ground truth every serving
    // path below must reproduce byte-for-byte.
    let mut local = TrainedClassifier::load(&t.artifact).expect("load base artifact");
    local
        .try_set_reference(Arc::clone(&target))
        .expect("sample-only evolution preserves the fitted geometry");
    let expected = local.classify_batch(&t.batch);
    let v2 = std::env::temp_dir().join(format!("fhc-tenant-v2-{}.fhc", std::process::id()));
    local.save(&v2).expect("save evolved artifact");

    // CLI round trip: diff the two artifacts, apply the delta to the
    // base, and the reproduced artifact is byte-identical to the real v2.
    let delta_path = std::env::temp_dir().join(format!("fhc-tenant-{}.fhcd", std::process::id()));
    let v2b = std::env::temp_dir().join(format!("fhc-tenant-v2b-{}.fhc", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_fhc-artifact"))
        .arg("diff")
        .arg("--base")
        .arg(&t.artifact)
        .arg("--target")
        .arg(&v2)
        .arg("--out")
        .arg(&delta_path)
        .status()
        .expect("run fhc-artifact diff");
    assert!(status.success(), "fhc-artifact diff failed");
    let status = Command::new(env!("CARGO_BIN_EXE_fhc-artifact"))
        .arg("apply")
        .arg("--base")
        .arg(&t.artifact)
        .arg("--delta")
        .arg(&delta_path)
        .arg("--out")
        .arg(&v2b)
        .status()
        .expect("run fhc-artifact apply");
    assert!(status.success(), "fhc-artifact apply failed");
    assert_eq!(
        std::fs::read(&v2).expect("read v2"),
        std::fs::read(&v2b).expect("read patched v2"),
        "the patched artifact must be byte-identical to the evolved one"
    );

    // Fleet equivalence: one diskless worker seeded by FULL push, one
    // stale worker (still loaded with the base artifact) upgraded by
    // DELTA push — together they must serve exactly the evolved
    // predictions.
    let (diskless, diskless_ep) = spawn_shardd(&["--diskless".into()]);
    let (stale, stale_ep) = {
        let mut args: Vec<std::ffi::OsString> = vec!["--artifact".into()];
        args.push(t.artifact.clone().into());
        spawn_shardd(&args)
    };
    let _guard = KillOnDrop(vec![diskless, stale]);

    let mut served = TrainedClassifier::load(&v2b).expect("load the patched artifact");
    served
        .try_set_backend(BackendConfig::Fleet {
            topology: FleetTopology::new(vec![FleetShard::solo(diskless_ep)]),
            tenant: None,
        })
        .expect("connect seeds the diskless worker by full push");
    let AnyBackend::Fleet(fleet) = served.backend() else {
        panic!("expected a fleet backend");
    };
    fleet.view().register_delta(delta).expect("register delta");
    fleet
        .view()
        .admit(FleetShard::solo(stale_ep))
        .expect("admit upgrades the stale worker by delta push");
    assert_eq!(
        served.try_classify_batch(&t.batch).expect("fleet serves"),
        expected,
        "delta-patched and full-push workers must serve identical predictions"
    );

    std::fs::remove_file(&t.artifact).ok();
    std::fs::remove_file(&v2).ok();
    std::fs::remove_file(&v2b).ok();
    std::fs::remove_file(&delta_path).ok();
}
