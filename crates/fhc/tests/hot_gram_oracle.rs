//! Scan-oracle equivalence on an adversarial **hot-gram corpus**: every
//! reference signature, in every channel, shares one 7-byte window
//! (`HOTGRAM`), so that single gram's posting list contains every entry of
//! every class. This is the worst case for the inverted gram index — the
//! candidate set degenerates to "everyone" and any dedup, projection, or
//! partition bug in the indexed/sharded/remote walks shows up as a row
//! diverging from the unindexed scan. Rows are compared as `f64` bit
//! patterns: byte-identical, no tolerance.

use fhc::backend::{BackendConfig, SimilarityBackend};
use fhc::features::{FeatureKind, PreparedSampleFeatures, SampleFeatures};
use fhc::shardnet::{worker, Endpoint, RemoteBackend, ShardWorker};
use fhc::similarity::ReferenceSet;
use std::net::TcpListener;
use std::sync::Arc;

/// A sample whose three channels are hand-built fuzzy hashes. `from_parts`
/// validates the signature alphabet, so an invalid shape fails loudly here
/// rather than scoring as silently-empty.
fn parts_sample(bs: u64, sig: &str, sig_double: &str) -> SampleFeatures {
    let h = ssdeep::FuzzyHash::from_parts(bs, sig.into(), sig_double.into())
        .unwrap_or_else(|e| panic!("bad hand-built hash {bs}:{sig}:{sig_double}: {e:?}"));
    SampleFeatures {
        file: h.clone(),
        strings: h.clone(),
        symbols: Some(h),
    }
}

/// Five classes, two references each — and every signature (primary and
/// double, at a shared block size) embeds the same `HOTGRAM` window
/// between class-unique flanks. No flank repeats a character three times,
/// so ssdeep's run elimination never splits the shared window.
fn hot_gram_reference() -> Arc<ReferenceSet> {
    let flanks = [
        ("QxWv", "jKpT"),
        ("ZeRu", "bNdF"),
        ("LmCy", "sVgH"),
        ("oPaD", "wXqJ"),
        ("tUkB", "eYfS"),
    ];
    let mut references = Vec::new();
    let mut labels = Vec::new();
    for (class, (left, right)) in flanks.iter().enumerate() {
        for (a, b) in [(left, right), (right, left)] {
            references.push(parts_sample(
                96,
                &format!("{a}HOTGRAM{b}"),
                &format!("{b}HOTGRAM{a}"),
            ));
            labels.push(class);
        }
    }
    Arc::new(ReferenceSet::new(
        (0..flanks.len()).map(|c| format!("class-{c}")).collect(),
        &references,
        &labels,
        &FeatureKind::ALL,
    ))
}

/// Probes spanning every adversarial angle on the hot gram: exact copies
/// of references (identical-hash fast path atop the saturated posting
/// list), the bare 7-byte window itself, the window in unseen flanks, the
/// window only in the double channel (factor-two pairing), and a stranger
/// with no hot gram at all.
fn probes() -> Vec<PreparedSampleFeatures> {
    [
        parts_sample(96, "QxWvHOTGRAMjKpT", "jKpTHOTGRAMQxWv"),
        parts_sample(96, "tUkBHOTGRAMeYfS", "eYfSHOTGRAMtUkB"),
        parts_sample(96, "HOTGRAM", "HOTGRAM"),
        parts_sample(96, "McVnHOTGRAMrGhZ", "kWsEHOTGRAMpLiU"),
        parts_sample(48, "NoMatchFlankXyz", "HOTGRAMabcd"),
        parts_sample(96, "UtterlyUnrelated", "zyxwvuts"),
    ]
    .iter()
    .map(PreparedSampleFeatures::prepare)
    .collect()
}

fn row_bits(backend: &dyn SimilarityBackend, query: &PreparedSampleFeatures) -> Vec<u64> {
    let mut row = vec![f64::NAN; backend.n_columns()];
    backend.max_scores_into(query, &mut row);
    row.into_iter().map(f64::to_bits).collect()
}

#[test]
fn indexed_and_sharded_match_the_scan_oracle_on_a_hot_gram_corpus() {
    let rs = hot_gram_reference();
    let oracle = BackendConfig::Scan.build(rs.clone());
    let probes = probes();

    // The hot corpus must actually be hot: the bare-window probe scores
    // against every class under the oracle, proving the shared gram admits
    // the full reference set as candidates (not an accidental no-op).
    let hot_row: Vec<u64> = row_bits(&oracle, &probes[2]);
    let zero = 0.0f64.to_bits();
    for class in 0..rs.n_classes() {
        assert!(
            (0..rs.kinds().len()).any(|k| hot_row[k * rs.n_classes() + class] != zero),
            "the bare HOTGRAM probe must score against class {class}"
        );
    }

    for config in [
        BackendConfig::Indexed,
        BackendConfig::Sharded { shards: 1 },
        BackendConfig::Sharded { shards: 2 },
        BackendConfig::Sharded { shards: 5 },
        BackendConfig::Sharded { shards: 8 },
    ] {
        let backend = config.build(rs.clone());
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(
                row_bits(&backend, probe),
                row_bits(&oracle, probe),
                "probe {i} under {config} diverged from the scan oracle"
            );
        }
    }
}

#[test]
fn remote_workers_match_the_scan_oracle_on_a_hot_gram_corpus() {
    let rs = hot_gram_reference();
    let oracle = BackendConfig::Scan.build(rs.clone());
    let probes = probes();

    // Two in-process loopback workers; each connection negotiates its own
    // round-robin partition of the classes, so the hot posting list is
    // walked per-shard and the partial rows merged client-side.
    let endpoints: Vec<Endpoint> = (0..2)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback worker");
            let addr = listener.local_addr().expect("worker addr").to_string();
            let shard = Arc::new(ShardWorker::all_classes(rs.clone()));
            std::thread::spawn(move || worker::serve_tcp(shard, listener));
            Endpoint::Tcp(addr)
        })
        .collect();
    let remote = RemoteBackend::connect(rs.clone(), &endpoints).expect("connect workers");

    for (i, probe) in probes.iter().enumerate() {
        let mut row = vec![f64::NAN; remote.n_columns()];
        remote
            .try_max_scores_into(probe, &mut row)
            .expect("healthy workers serve");
        let bits: Vec<u64> = row.into_iter().map(f64::to_bits).collect();
        assert_eq!(
            bits,
            row_bits(&oracle, probe),
            "probe {i} over the wire diverged from the scan oracle"
        );
    }
}
