//! End-to-end loopback test of the `fhc-gateway` front-door daemon.
//!
//! Trains a small classifier, saves the artifact, spawns two real
//! `fhc-shardd` processes plus one real `fhc-gateway` process fronting
//! them on loopback TCP, and serves the same artifact through the gateway
//! via `BackendConfig::Gateway` (`gateway:EP`). Predictions must be
//! byte-identical to the in-process indexed backend — including from
//! several client threads at once, which drives the gateway's batch
//! coalescing; killing a shard daemon behind the gateway must surface as
//! a typed error, not a wrong or partial prediction. This is the test CI
//! runs explicitly so the gateway path cannot silently rot.

use corpus::{Catalog, CorpusBuilder};
use fhc::backend::BackendConfig;
use fhc::config::FhcConfig;
use fhc::error::FhcError;
use fhc::pipeline::{FuzzyHashClassifier, PipelineConfig};
use fhc::serving::TrainedClassifier;
use fhc::shardnet::Endpoint;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// Scrape the bound address from a daemon's announcement line (both
/// daemons print "<name> listening on ADDR ...").
fn scrape_endpoint(child: &mut Child) -> Endpoint {
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    addr.parse::<Endpoint>()
        .unwrap_or_else(|e| panic!("bad announced address {addr:?}: {e}"))
}

/// Spawn one `fhc-shardd` on an OS-assigned loopback port.
fn spawn_shardd(artifact: &std::path::Path, shard: usize, of: usize) -> (Child, Endpoint) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fhc-shardd"))
        .arg("--artifact")
        .arg(artifact)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--shard")
        .arg(format!("{shard}/{of}"))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-shardd");
    let endpoint = scrape_endpoint(&mut child);
    (child, endpoint)
}

/// Spawn one `fhc-gateway` fronting `workers` on an OS-assigned loopback
/// port, with any extra CLI flags appended.
fn spawn_gateway_with(
    artifact: &std::path::Path,
    workers: &[Endpoint],
    extra: &[&str],
) -> (Child, Endpoint) {
    let list = workers
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut child = Command::new(env!("CARGO_BIN_EXE_fhc-gateway"))
        .arg("--artifact")
        .arg(artifact)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(list)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fhc-gateway");
    let endpoint = scrape_endpoint(&mut child);
    (child, endpoint)
}

/// Spawn one `fhc-gateway` fronting `workers` on an OS-assigned loopback
/// port.
fn spawn_gateway(artifact: &std::path::Path, workers: &[Endpoint]) -> (Child, Endpoint) {
    spawn_gateway_with(artifact, workers, &[])
}

struct KillOnDrop(Vec<Child>);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn gateway_daemon_serves_byte_identical_predictions_and_relays_worker_loss() {
    // Train once, small but real.
    let corpus = CorpusBuilder::new(53).build(&Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 53,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let trained = FuzzyHashClassifier::with_config(config.clone())
        .fit(&corpus)
        .expect("fit succeeds");
    let artifact =
        std::env::temp_dir().join(format!("fhc-gateway-test-{}.fhc", std::process::id()));
    trained.save(&artifact).expect("save artifact");

    // Two real shard daemons plus the gateway daemon fronting them.
    let (shard0, endpoint0) = spawn_shardd(&artifact, 0, 2);
    let (shard1, endpoint1) = spawn_shardd(&artifact, 1, 2);
    let (gateway, front) = spawn_gateway(&artifact, &[endpoint0, endpoint1]);
    let mut guard = KillOnDrop(vec![shard0, shard1, gateway]);

    // Reopen the stored artifact through the gateway.
    let gateway_config = config.backend(BackendConfig::Gateway {
        endpoint: front.clone(),
        tenant: None,
    });
    let served = TrainedClassifier::load_with(&artifact, &gateway_config)
        .expect("artifact opens against the running gateway");
    assert_eq!(
        served.backend_config(),
        BackendConfig::Gateway {
            endpoint: front,
            tenant: None,
        }
    );

    // Byte-identical predictions vs the local indexed backend — first
    // serially, then from several threads at once (the coalescing path).
    let batch: Vec<(String, Vec<u8>)> = corpus
        .samples()
        .iter()
        .step_by(29)
        .map(|s| (s.install_path(), corpus.generate_bytes(s)))
        .collect();
    assert!(batch.len() >= 4, "need a real batch");
    let expected = trained.classify_batch(&batch);
    let via_gateway = served.try_classify_batch(&batch).expect("fleet is healthy");
    assert_eq!(via_gateway, expected);

    let served = Arc::new(served);
    let expected_shared = Arc::new(expected.clone());
    let batch_shared = Arc::new(batch.clone());
    let clients: Vec<_> = (0..4)
        .map(|client| {
            let served = Arc::clone(&served);
            let expected = Arc::clone(&expected_shared);
            let batch = Arc::clone(&batch_shared);
            std::thread::spawn(move || {
                for (i, (_, bytes)) in batch.iter().enumerate() {
                    let prediction = served.try_classify(bytes).expect("fleet is healthy");
                    assert_eq!(
                        prediction, expected[i].1,
                        "client {client} diverged on sample {i}"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // Kill one shard daemon *behind* the gateway: serving must degrade to
    // a typed error relayed through the gateway, never to a wrong or
    // partial prediction.
    guard.0[1].kill().expect("kill shard 1");
    guard.0[1].wait().expect("reap shard 1");
    let mut saw_typed_error = false;
    for (name, bytes) in batch.iter().take(4) {
        match served.try_classify(bytes) {
            Ok(prediction) => {
                let (_, expected_prediction) =
                    expected.iter().find(|(n, _)| n == name).expect("in batch");
                assert_eq!(
                    &prediction, expected_prediction,
                    "degraded but wrong: {name}"
                );
            }
            Err(FhcError::Net(_)) => saw_typed_error = true,
            Err(other) => panic!("expected FhcError::Net, got {other}"),
        }
    }
    assert!(
        saw_typed_error,
        "killing a worker behind the gateway must surface as a typed error"
    );

    drop(guard);
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn gateway_daemon_sheds_over_quota_clients_with_a_typed_overload() {
    use fhc::shardnet::NetError;

    // Train once, small but real.
    let corpus = CorpusBuilder::new(59).build(&Catalog::paper().scaled(0.02));
    let config = FhcConfig::new().pipeline(PipelineConfig {
        seed: 59,
        forest: mlcore::forest::RandomForestParams {
            n_estimators: 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let trained = FuzzyHashClassifier::with_config(config.clone())
        .fit(&corpus)
        .expect("fit succeeds");
    let artifact =
        std::env::temp_dir().join(format!("fhc-overload-test-{}.fhc", std::process::id()));
    trained.save(&artifact).expect("save artifact");

    // One shard daemon behind two gateways over the same workers: one with
    // a 1 rps quota on its own tenant ("default"), one whose only quota
    // names a tenant it does not serve — that quota must be inert.
    let (shard0, endpoint0) = spawn_shardd(&artifact, 0, 1);
    let (quotaed, quotaed_front) = spawn_gateway_with(
        &artifact,
        std::slice::from_ref(&endpoint0),
        &["--quota", "default=1", "--max-inflight", "64"],
    );
    let (open, open_front) = spawn_gateway_with(
        &artifact,
        std::slice::from_ref(&endpoint0),
        &["--quota", "ghost-tenant=1"],
    );
    let guard = KillOnDrop(vec![shard0, quotaed, open]);

    let open_config = |front: Endpoint| {
        config.clone().backend(BackendConfig::Gateway {
            endpoint: front,
            tenant: None,
        })
    };
    let throttled = TrainedClassifier::load_with(&artifact, &open_config(quotaed_front))
        .expect("artifact opens against the quotaed gateway");
    let unthrottled = TrainedClassifier::load_with(&artifact, &open_config(open_front))
        .expect("artifact opens against the open gateway");

    let sample = &corpus.samples()[0];
    let bytes = corpus.generate_bytes(sample);
    let expected = trained.classify(&bytes);

    // In quota: the first request through the fresh bucket serves a
    // byte-identical prediction.
    assert_eq!(
        throttled
            .try_classify(&bytes)
            .expect("first request is in quota"),
        expected
    );

    // Burst past 1 rps: at least one request must shed with the typed,
    // retry-hinted Overload — and every non-shed answer stays correct.
    let mut shed = 0usize;
    for _ in 0..10 {
        match throttled.try_classify(&bytes) {
            Ok(prediction) => assert_eq!(prediction, expected, "over quota but wrong"),
            Err(FhcError::Net(NetError::Overload { retry_after_ms, .. })) => {
                assert!(retry_after_ms > 0, "retry hint must be non-zero");
                shed += 1;
            }
            Err(other) => panic!("expected a typed Overload, got {other}"),
        }
    }
    assert!(shed > 0, "a 10-request burst at 1 rps must shed");

    // The same burst against the gateway whose quota names a foreign
    // tenant is never shed: a quota binds only the tenant it names.
    for i in 0..10 {
        assert_eq!(
            unthrottled
                .try_classify(&bytes)
                .unwrap_or_else(|e| panic!("foreign-tenant quota shed request {i}: {e}")),
            expected
        );
    }

    // And shedding is shedding, not poison: once the bucket refills, the
    // same connection serves byte-identical predictions again.
    std::thread::sleep(std::time::Duration::from_millis(1100));
    assert_eq!(
        throttled.try_classify(&bytes).expect("bucket refilled"),
        expected
    );

    drop(guard);
    std::fs::remove_file(&artifact).ok();
}
