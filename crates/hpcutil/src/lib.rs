//! Shared HPC-style utilities for the Fuzzy Hash Classifier workspace.
//!
//! This crate provides the small, dependency-light building blocks that the
//! rest of the workspace relies on:
//!
//! * [`par`] — data-parallel helpers built on standard-library scoped threads
//!   (parallel map over slices and index ranges with chunked work stealing),
//!   used to hash corpora, fill similarity matrices, and train forest trees
//!   without data races.
//! * [`table`] — plain-text table rendering used by the experiment binaries
//!   to print the paper's tables in a readable, diff-friendly format.
//! * [`rngseq`] — deterministic seed derivation so every experiment is
//!   reproducible from a single root seed.
//! * [`timing`] — a tiny stopwatch/section timer for reporting wall-clock
//!   cost of pipeline stages.
//! * [`codec`] — a little-endian, length-prefixed binary codec used to
//!   persist trained models as versioned on-disk artifacts.
//! * [`frame`] — checksummed, length-prefixed frames over byte streams,
//!   the transport layer under the distributed shard-serving protocol.
//! * [`pool`] — a persistent worker-thread pool for per-query fan-out where
//!   scoped-thread spawning would dominate the work itself.
//! * [`mux`] — a thread-based connection multiplexer: many caller threads
//!   pipeline request/reply frames over one stream, correlated by request
//!   id, with no mutex held across a round trip.
//! * [`failpoint`] — deterministic fault injection behind the `failpoints`
//!   feature: named sites in the transport layers where chaos tests inject
//!   I/O errors, delays, corruption, truncation, and dropped connections
//!   on seeded schedules. Compiled to a no-op by default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod failpoint;
pub mod frame;
pub mod mux;
pub mod par;
pub mod pool;
pub mod rngseq;
pub mod table;
pub mod timing;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use frame::{encode_frame, read_frame, write_assembled_frame, write_frame, FrameError};
pub use mux::{Mux, MuxError, MuxErrorKind, MuxOptions, PendingReply};
pub use par::{in_parallel_worker, par_map, par_map_indexed, ParallelConfig};
pub use pool::WorkerPool;
pub use rngseq::SeedSequence;
pub use table::TextTable;
pub use timing::SectionTimer;
