//! Deterministic, zero-cost-when-disabled failpoints.
//!
//! A *failpoint* is a named site in the code where a test harness can
//! inject a fault: an I/O error, a delay, a corrupted or truncated byte
//! stream, a dropped connection. Sites are compiled in only when the
//! `failpoints` cargo feature is on; without it every [`hit`] call is an
//! `#[inline(always)]` `None` and the instrumented code is byte-for-byte
//! the fast path — the release build carries no registry, no atomics, no
//! branches that matter.
//!
//! With the feature on, a schedule is armed with [`configure`] from a spec
//! string (the `--failpoints` flag / `FHC_FAILPOINTS` environment variable
//! of the serving daemons):
//!
//! ```text
//! SPEC     := ITEM (';' ITEM)*
//! ITEM     := SITE '=' ACTION ('@' SCHEDULE)?
//! ACTION   := 'err_io' | 'close_conn' | 'delay:MS' | 'corrupt:IDX' | 'truncate:N'
//! SCHEDULE := ORD (',' ORD)*          -- fire on the given 1-based hits
//!           | 'every:N'               -- fire on every N-th hit
//!           | 'rand:SEED:PCT'         -- fire PCT% of hits, seeded rng
//! ```
//!
//! Examples: `frame.write=corrupt:7@3,7` corrupts byte 7 of the 3rd and
//! 7th frame written; `mux.reader=err_io@rand:42:25` fails a quarter of
//! reader wakeups under a ChaCha8 stream seeded with 42. Schedules are
//! fully deterministic — the `rand` form drives the vendored rng shim from
//! its seed, so a failing chaos round replays exactly from its seed.
//!
//! Site names are **registered**: every name lives in the single [`SITES`]
//! table and [`configure`] rejects a spec naming anything else, so a typo
//! can never silently no-op. The `fhc-lint` rule R7 (`failpoint_named`)
//! enforces the mirror property at the call sites: every [`hit`] call
//! passes a unique string literal present in this table.

/// Every registered failpoint site, one per line. [`configure`] rejects
/// any site not listed here, and fhc-lint rule R7 checks that every
/// [`hit`] call site names exactly one of these entries.
pub const SITES: &[&str] = &[
    "frame.read",
    "frame.write",
    "frame.checksum",
    "mux.writer",
    "mux.reader",
    "pool.job",
    "remote.handshake",
    "remote.batch_send",
    "remote.redial",
    "fleet.hedge",
    "fleet.push_slice",
    "fleet.delta_apply",
    "fleet.cutover",
    "gateway.coalesce",
    "gateway.distribute",
];

/// The fault injected when a site's schedule fires.
///
/// `Delay` never reaches callers: [`hit`] sleeps internally and returns
/// `None`, so instrumented code only ever handles the faults it can map to
/// a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Behave as if the underlying transport returned an I/O error.
    ErrIo,
    /// Corrupt the byte at the given index of the buffer in flight
    /// (callers reduce the index modulo the buffer length).
    CorruptByte(usize),
    /// Truncate the buffer in flight after the given number of bytes.
    TruncateAfter(usize),
    /// Behave as if the peer closed the connection.
    CloseConn,
}

/// Whether failpoint support was compiled in at all. The serving CI
/// asserts this is `false` under default features (the zero-cost claim).
pub fn compiled() -> bool {
    cfg!(feature = "failpoints")
}

/// `true` while a configured schedule is armed. Purely informational —
/// [`hit`] does its own (cheaper) check.
pub fn is_active() -> bool {
    imp::is_active()
}

/// Arm the failpoint registry from a spec string (grammar in the module
/// docs). Replaces any previous configuration atomically. With the
/// `failpoints` feature compiled out this always returns an error, so
/// daemons can warn that a requested spec cannot take effect.
pub fn configure(spec: &str) -> Result<(), String> {
    imp::configure(spec)
}

/// Disarm every site and clear the registry. A no-op when nothing is
/// armed (or when the feature is compiled out).
pub fn clear() {
    imp::clear()
}

/// Probe the named site: `None` means proceed normally, `Some(fault)`
/// means the site's schedule fired and the caller must inject `fault`.
/// Delay actions sleep here and return `None`.
#[inline(always)]
pub fn hit(site: &'static str) -> Option<Fault> {
    imp::hit(site)
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::Fault;

    pub(super) fn is_active() -> bool {
        false
    }

    pub(super) fn configure(_spec: &str) -> Result<(), String> {
        Err("failpoints are compiled out; rebuild with `--features failpoints`".into())
    }

    pub(super) fn clear() {}

    #[inline(always)]
    pub(super) fn hit(_site: &'static str) -> Option<Fault> {
        None
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{Fault, SITES};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// Armed fast-path flag: `hit` pays one relaxed load while disarmed,
    /// even when the registry lock is busy.
    static ARMED: AtomicBool = AtomicBool::new(false);

    /// What a fired schedule does; `Delay` is handled inside `hit`.
    #[derive(Debug, Clone, Copy)]
    enum Action {
        ErrIo,
        Delay(u64),
        CorruptByte(usize),
        TruncateAfter(usize),
        CloseConn,
    }

    #[derive(Debug)]
    enum Schedule {
        /// Fire on every hit.
        Always,
        /// Fire on the given 1-based hit ordinals.
        Ordinals(Vec<u64>),
        /// Fire on every n-th hit.
        Every(u64),
        /// Fire on `pct`% of hits, driven by a seeded ChaCha8 stream.
        Rand(Box<ChaCha8Rng>, u32),
    }

    impl Schedule {
        fn fires(&mut self, hit_count: u64) -> bool {
            match self {
                Schedule::Always => true,
                Schedule::Ordinals(ordinals) => ordinals.contains(&hit_count),
                Schedule::Every(n) => hit_count % *n == 0,
                Schedule::Rand(rng, pct) => rng.gen_range(0..100u32) < *pct,
            }
        }
    }

    #[derive(Debug)]
    struct SiteState {
        action: Action,
        schedule: Schedule,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<&'static str, SiteState>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, SiteState>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub(super) fn is_active() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    fn parse_action(text: &str) -> Result<Action, String> {
        if let Some(ms) = text.strip_prefix("delay:") {
            let ms = ms
                .parse::<u64>()
                .map_err(|e| format!("bad delay milliseconds {ms:?}: {e}"))?;
            return Ok(Action::Delay(ms));
        }
        if let Some(idx) = text.strip_prefix("corrupt:") {
            let idx = idx
                .parse::<usize>()
                .map_err(|e| format!("bad corrupt byte index {idx:?}: {e}"))?;
            return Ok(Action::CorruptByte(idx));
        }
        if let Some(n) = text.strip_prefix("truncate:") {
            let n = n
                .parse::<usize>()
                .map_err(|e| format!("bad truncate length {n:?}: {e}"))?;
            return Ok(Action::TruncateAfter(n));
        }
        match text {
            "err_io" => Ok(Action::ErrIo),
            "close_conn" => Ok(Action::CloseConn),
            other => Err(format!(
                "unknown failpoint action {other:?} (want err_io, close_conn, \
                 delay:MS, corrupt:IDX, or truncate:N)"
            )),
        }
    }

    fn parse_schedule(text: &str) -> Result<Schedule, String> {
        if let Some(n) = text.strip_prefix("every:") {
            let n = n
                .parse::<u64>()
                .map_err(|e| format!("bad every-N schedule {n:?}: {e}"))?;
            if n == 0 {
                return Err("every:0 would never fire; use at least every:1".into());
            }
            return Ok(Schedule::Every(n));
        }
        if let Some(rest) = text.strip_prefix("rand:") {
            let (seed, pct) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad rand schedule {rest:?}: want rand:SEED:PCT"))?;
            let seed = seed
                .parse::<u64>()
                .map_err(|e| format!("bad rand seed {seed:?}: {e}"))?;
            let pct = pct
                .parse::<u32>()
                .map_err(|e| format!("bad rand percentage {pct:?}: {e}"))?;
            if pct > 100 {
                return Err(format!("rand percentage {pct} exceeds 100"));
            }
            return Ok(Schedule::Rand(
                Box::new(ChaCha8Rng::seed_from_u64(seed)),
                pct,
            ));
        }
        let ordinals = text
            .split(',')
            .map(|ord| {
                let ord = ord
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad hit ordinal {ord:?}: {e}"))?;
                if ord == 0 {
                    return Err("hit ordinals are 1-based; 0 never fires".to_string());
                }
                Ok(ord)
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Schedule::Ordinals(ordinals))
    }

    pub(super) fn configure(spec: &str) -> Result<(), String> {
        let mut sites: HashMap<&'static str, SiteState> = HashMap::new();
        for item in spec.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (site, rest) = item
                .split_once('=')
                .ok_or_else(|| format!("bad failpoint item {item:?}: want SITE=ACTION[@SCHED]"))?;
            let site = site.trim();
            let registered = SITES
                .iter()
                .copied()
                .find(|&name| name == site)
                .ok_or_else(|| format!("unknown failpoint site {site:?}"))?;
            let (action, schedule) = match rest.split_once('@') {
                Some((action, schedule)) => (parse_action(action.trim())?, {
                    parse_schedule(schedule.trim())?
                }),
                None => (parse_action(rest.trim())?, Schedule::Always),
            };
            sites.insert(
                registered,
                SiteState {
                    action,
                    schedule,
                    hits: 0,
                },
            );
        }
        let armed = !sites.is_empty();
        *registry().lock().unwrap_or_else(|p| p.into_inner()) = sites;
        ARMED.store(armed, Ordering::Relaxed);
        Ok(())
    }

    pub(super) fn clear() {
        ARMED.store(false, Ordering::Relaxed);
        registry().lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    pub(super) fn hit(site: &'static str) -> Option<Fault> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let action = {
            let mut sites = registry().lock().unwrap_or_else(|p| p.into_inner());
            let state = sites.get_mut(site)?;
            state.hits += 1;
            let hits = state.hits;
            if !state.schedule.fires(hits) {
                return None;
            }
            state.action
        };
        match action {
            Action::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                None
            }
            Action::ErrIo => Some(Fault::ErrIo),
            Action::CorruptByte(i) => Some(Fault::CorruptByte(i)),
            Action::TruncateAfter(n) => Some(Fault::TruncateAfter(n)),
            Action::CloseConn => Some(Fault::CloseConn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_are_unique_and_sorted_by_layer() {
        let mut seen = std::collections::HashSet::new();
        for site in SITES {
            assert!(seen.insert(site), "duplicate failpoint site {site:?}");
            assert!(
                site.contains('.'),
                "site {site:?} must be layer-qualified (layer.name)"
            );
        }
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!compiled());
        assert!(!is_active());
        assert!(configure("frame.read=err_io").is_err());
        assert_eq!(hit("frame.read"), None);
        clear();
    }

    #[cfg(feature = "failpoints")]
    mod enabled {
        use super::super::*;
        use std::sync::{Mutex, OnceLock};

        /// The registry is process-global; tests touching it serialize.
        fn guard() -> std::sync::MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            LOCK.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|p| p.into_inner())
        }

        #[test]
        fn ordinal_schedules_fire_on_exact_hits() {
            let _guard = guard();
            configure("frame.read=err_io@2,4").expect("configure");
            assert!(is_active());
            assert_eq!(hit("frame.read"), None);
            assert_eq!(hit("frame.read"), Some(Fault::ErrIo));
            assert_eq!(hit("frame.read"), None);
            assert_eq!(hit("frame.read"), Some(Fault::ErrIo));
            assert_eq!(hit("frame.read"), None);
            // An unconfigured site never fires.
            assert_eq!(hit("frame.write"), None);
            clear();
            assert!(!is_active());
            assert_eq!(hit("frame.read"), None);
        }

        #[test]
        fn every_n_and_always_schedules() {
            let _guard = guard();
            configure("mux.writer=close_conn@every:3; frame.write=corrupt:5").expect("configure");
            assert_eq!(hit("mux.writer"), None);
            assert_eq!(hit("mux.writer"), None);
            assert_eq!(hit("mux.writer"), Some(Fault::CloseConn));
            assert_eq!(hit("frame.write"), Some(Fault::CorruptByte(5)));
            assert_eq!(hit("frame.write"), Some(Fault::CorruptByte(5)));
            clear();
        }

        #[test]
        fn rand_schedules_are_seed_deterministic() {
            let _guard = guard();
            let run = || {
                configure("pool.job=truncate:9@rand:42:50").expect("configure");
                let fired: Vec<bool> = (0..64).map(|_| hit("pool.job").is_some()).collect();
                clear();
                fired
            };
            let first = run();
            let second = run();
            assert_eq!(first, second, "same seed, same schedule");
            assert!(first.iter().any(|&f| f), "50% over 64 hits must fire");
            assert!(!first.iter().all(|&f| f), "and must also skip");
        }

        #[test]
        fn bad_specs_are_rejected_with_reasons() {
            let _guard = guard();
            for bad in [
                "nosuch.site=err_io",
                "frame.read",
                "frame.read=explode",
                "frame.read=delay:abc",
                "frame.read=err_io@every:0",
                "frame.read=err_io@0",
                "frame.read=err_io@rand:1:101",
                "frame.read=err_io@rand:1",
            ] {
                assert!(configure(bad).is_err(), "{bad:?} must be rejected");
            }
            // A rejected spec arms nothing.
            assert!(!is_active());
            // Empty specs are fine (explicit disarm).
            configure("").expect("empty spec disarms");
            assert!(!is_active());
        }
    }
}
