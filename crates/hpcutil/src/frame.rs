//! Checksummed, length-prefixed frames over byte streams.
//!
//! The codec in [`codec`](crate::codec) encodes self-contained byte buffers;
//! this module moves such buffers across a stream transport (TCP, Unix
//! sockets, pipes) with enough structure that a reader can never misparse a
//! torn or corrupted write as a valid message:
//!
//! ```text
//! u8   tag       application-defined frame type
//! u32  length    payload byte count (little-endian)
//! ...  payload   `length` bytes
//! u64  checksum  FNV-1a of tag + length + payload (little-endian)
//! ```
//!
//! The checksum covers the header too, so a flipped tag or length byte is
//! detected just like payload corruption.
//!
//! The reader validates the length against a caller-supplied ceiling before
//! allocating (a corrupt length prefix cannot trigger a huge reservation)
//! and verifies the checksum before the payload is handed to the
//! application. Protocol versioning is an application concern: the shard
//! serving protocol, for instance, carries its version inside its handshake
//! frame.

use crate::codec::{fnv1a64, fnv1a64_continue};
use std::io::{self, Read, Write};

/// Error produced when reading a frame from a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The stream bytes do not form a valid frame (oversized length prefix,
    /// checksum mismatch).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Assemble one frame (tag + length-prefixed payload + checksum) into a
/// standalone buffer. Pure serialization: no transport is involved, so no
/// failpoint fires here — inject on the *write* instead.
pub fn encode_frame(tag: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    let mut buf = Vec::with_capacity(1 + 4 + payload.len() + 8);
    buf.push(tag);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    let checksum = fnv1a64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    Ok(buf)
}

/// Write one frame (tag + length-prefixed payload + checksum) to `w`.
///
/// The frame is assembled in memory and written with a single `write_all`,
/// so concurrent writers that serialize at a higher level never interleave
/// partial frames.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    let buf = encode_frame(tag, payload)?;
    write_assembled_frame(w, &buf)
}

/// Write pre-assembled frame bytes (as produced by [`encode_frame`]) to `w`
/// in one `write_all`. This is the transport boundary every outbound frame
/// crosses — including senders that encode once and fan the same buffer out
/// to many peers — so the `frame.write` failpoint lives here.
pub fn write_assembled_frame<W: Write + ?Sized>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    // Failpoint: mutate or abort the fully-assembled (already checksummed)
    // frame, so injected corruption is always *detectable* corruption —
    // the receiver sees a checksum mismatch or a torn stream, never a
    // plausible frame with wrong bytes.
    match crate::failpoint::hit("frame.write") {
        None => {}
        Some(crate::failpoint::Fault::CorruptByte(i)) if !frame.is_empty() => {
            let mut corrupted = frame.to_vec();
            let index = i % corrupted.len();
            corrupted[index] ^= 0x40;
            w.write_all(&corrupted)?;
            return w.flush();
        }
        Some(crate::failpoint::Fault::TruncateAfter(n)) => {
            // A write torn mid-frame: the prefix reaches the peer, then the
            // connection dies from the writer's point of view.
            let cut = n.min(frame.len());
            w.write_all(&frame[..cut])?;
            let _ = w.flush();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "failpoint frame.write: write truncated mid-frame",
            ));
        }
        Some(_) => {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "failpoint frame.write: injected write failure",
            ));
        }
    }
    w.write_all(frame)?;
    w.flush()
}

/// Read one frame from `r`, returning `(tag, payload)`.
///
/// `max_payload` bounds the length prefix the reader will honor; anything
/// larger is rejected as malformed without allocating. A checksum mismatch
/// is likewise rejected — the payload never reaches the caller.
pub fn read_frame<R: Read + ?Sized>(
    r: &mut R,
    max_payload: usize,
) -> Result<(u8, Vec<u8>), FrameError> {
    // Failpoint: fail or starve the read before any byte is consumed, so
    // an injected fault never leaves the stream mid-frame for a retry to
    // misparse.
    match crate::failpoint::hit("frame.read") {
        None => {}
        Some(crate::failpoint::Fault::CloseConn) => {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "failpoint frame.read: connection closed",
            )));
        }
        Some(_) => {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "failpoint frame.read: injected read failure",
            )));
        }
    }
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let tag = header[0];
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > max_payload {
        return Err(FrameError::Malformed(format!(
            "frame payload of {len} bytes exceeds the {max_payload}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    let stored = u64::from_le_bytes(checksum);
    let actual = fnv1a64_continue(fnv1a64(&header), &payload);
    // Failpoint: force the verification down the mismatch path — the exact
    // behavior a frame corrupted in transit produces (any configured
    // action behaves the same here; only the schedule matters).
    if crate::failpoint::hit("frame.checksum").is_some() {
        return Err(FrameError::Malformed(
            "failpoint frame.checksum: injected checksum mismatch".into(),
        ));
    }
    if stored != actual {
        return Err(FrameError::Malformed(format!(
            "frame checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok((tag, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"first payload").unwrap();
        write_frame(&mut buf, 7, b"").unwrap();
        write_frame(&mut buf, 255, &[0u8; 1000]).unwrap();

        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 4096).unwrap(),
            (1, b"first payload".to_vec())
        );
        assert_eq!(read_frame(&mut cursor, 4096).unwrap(), (7, Vec::new()));
        assert_eq!(
            read_frame(&mut cursor, 4096).unwrap(),
            (255, vec![0u8; 1000])
        );
        // EOF after the last frame surfaces as an Io error.
        assert!(matches!(
            read_frame(&mut cursor, 4096),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn truncation_at_every_boundary_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"truncate me somewhere").unwrap();
        for cut in 0..buf.len() {
            let mut cursor = Cursor::new(&buf[..cut]);
            assert!(
                matches!(read_frame(&mut cursor, 4096), Err(FrameError::Io(_))),
                "cut at {cut} must fail as Io"
            );
        }
    }

    #[test]
    fn corruption_anywhere_in_the_frame_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"payload under protection").unwrap();
        for flip in 0..buf.len() {
            let mut bad = buf.clone();
            bad[flip] ^= 0x01;
            let mut cursor = Cursor::new(bad);
            // The checksum covers tag + length + payload, so any flip is an
            // error: Malformed for tag/payload/checksum flips, Malformed or
            // Io for length flips (a larger length runs off the input).
            assert!(
                read_frame(&mut cursor, 4096).is_err(),
                "flipped byte {flip} must be detected"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn error_display_and_source() {
        let e = FrameError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FrameError::Malformed("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
