//! Plain-text table rendering.
//!
//! The experiment binaries print the paper's tables (classification report,
//! feature importance, unknown-class membership, ...) as aligned ASCII
//! tables so results are readable in a terminal and diff-friendly when
//! written to `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// Column alignment for [`TextTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (text columns).
    Left,
    /// Pad on the left (numeric columns).
    Right,
}

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    align: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers; all columns default to
    /// left alignment.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let align = vec![Align::Left; header.len()];
        Self {
            header,
            align,
            rows: Vec::new(),
        }
    }

    /// Set per-column alignment. Extra entries are ignored; missing entries
    /// keep the default.
    pub fn with_alignment(mut self, align: Vec<Align>) -> Self {
        for (i, a) in align.into_iter().enumerate() {
            if i < self.align.len() {
                self.align[i] = a;
            }
        }
        self
    }

    /// Append a data row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
    }

    /// Number of data rows currently in the table.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a `String`, one line per row, columns separated by
    /// two spaces, with a dashed separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        self.render_row(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            self.render_row(&mut out, row, &widths);
        }
        out
    }

    /// Render the table as a GitHub-flavoured Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let seps: Vec<&str> = self
            .align
            .iter()
            .map(|a| match a {
                Align::Left => "---",
                Align::Right => "---:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    fn render_row(&self, out: &mut String, row: &[String], widths: &[usize]) {
        let mut parts: Vec<String> = Vec::with_capacity(row.len());
        for (i, cell) in row.iter().enumerate() {
            let width = widths[i];
            let pad = width.saturating_sub(cell.chars().count());
            let padded = match self.align[i] {
                Align::Left => format!("{}{}", cell, " ".repeat(pad)),
                Align::Right => format!("{}{}", " ".repeat(pad), cell),
            };
            parts.push(padded);
        }
        let _ = writeln!(out, "{}", parts.join("  ").trim_end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = TextTable::new(vec!["Class", "F1"]);
        t.add_row(vec!["Velvet", "1.00"]);
        t.add_row(vec!["FSL", "0.99"]);
        let s = t.render();
        assert!(s.contains("Class"));
        assert!(s.contains("Velvet"));
        assert!(s.contains("FSL"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn alignment_right_pads_left() {
        let mut t =
            TextTable::new(vec!["name", "count"]).with_alignment(vec![Align::Left, Align::Right]);
        t.add_row(vec!["a", "5"]);
        t.add_row(vec!["bb", "500"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // "500" and "  5" should right-align in the same column.
        assert!(lines[2].ends_with("  5") || lines[2].ends_with(" 5"));
        assert!(lines[3].ends_with("500"));
    }

    #[test]
    fn short_rows_are_padded_long_rows_truncated() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        t.add_row(vec!["1", "2", "3", "4"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('4'));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new(vec!["x", "y"]).with_alignment(vec![Align::Left, Align::Right]);
        t.add_row(vec!["foo", "1"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| x | y |"));
        assert!(md.contains("| --- | ---: |"));
        assert!(md.contains("| foo | 1 |"));
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(vec!["only", "header"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }
}
