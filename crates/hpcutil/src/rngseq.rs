//! Deterministic seed derivation.
//!
//! Every stochastic component in the workspace (corpus generation, train/test
//! splitting, bootstrap sampling, grid search shuffles) takes an explicit
//! `u64` seed. [`SeedSequence`] derives independent child seeds from a root
//! seed and a label so that changing one component's seed usage does not
//! perturb the stream another component sees — the same property NumPy's
//! `SeedSequence` provides for the paper's Python/scikit-learn pipeline.

/// Derives stable, well-mixed child seeds from a root seed and string labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Create a seed sequence from a root seed.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed this sequence was created from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derive a child seed for a named component.
    ///
    /// The same `(root, label)` pair always yields the same seed; different
    /// labels yield (with overwhelming probability) unrelated seeds.
    ///
    /// # Examples
    ///
    /// ```
    /// use hpcutil::SeedSequence;
    /// let seq = SeedSequence::new(42);
    /// assert_eq!(seq.derive("split"), seq.derive("split"));
    /// assert_ne!(seq.derive("split"), seq.derive("forest"));
    /// ```
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = self.root ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = splitmix64(h);
        }
        splitmix64(h)
    }

    /// Derive a child seed for a named component plus an index (e.g. tree 17
    /// of a forest, or fold 3 of a cross-validation).
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.derive(label) ^ splitmix64(index.wrapping_add(0xA5A5_5A5A_1234_5678)))
    }
}

/// SplitMix64 finalizer — a well-tested 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        let a = SeedSequence::new(7).derive("corpus");
        let b = SeedSequence::new(7).derive("corpus");
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let seq = SeedSequence::new(7);
        assert_ne!(seq.derive("corpus"), seq.derive("forest"));
        assert_ne!(seq.derive("a"), seq.derive("b"));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(
            SeedSequence::new(1).derive("x"),
            SeedSequence::new(2).derive("x")
        );
    }

    #[test]
    fn indexed_derivation_unique_over_range() {
        let seq = SeedSequence::new(123);
        let seeds: HashSet<u64> = (0..10_000).map(|i| seq.derive_indexed("tree", i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn root_accessor() {
        assert_eq!(SeedSequence::new(99).root(), 99);
    }

    #[test]
    fn empty_label_is_valid() {
        let seq = SeedSequence::new(5);
        // Must not panic and must still be deterministic.
        assert_eq!(seq.derive(""), seq.derive(""));
        assert_ne!(seq.derive(""), seq.derive("x"));
    }
}
