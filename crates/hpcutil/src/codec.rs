//! A tiny hand-rolled binary codec.
//!
//! The serving API persists trained classifiers to disk (train once, classify
//! from many processes). The build environment has no serialization crates,
//! so the workspace uses this little-endian, length-prefixed format instead:
//! fixed-width integers, IEEE-754 bit-pattern floats, and UTF-8 strings with
//! a `u32` byte-length prefix. Readers validate every length against the
//! remaining input, so truncated or corrupt artifacts fail with a clean
//! [`CodecError`] rather than a panic.

use std::fmt;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong, with an offset where applicable.
    pub message: String,
}

impl CodecError {
    /// Construct an error from anything displayable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Append-only binary writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Write a UTF-8 string with a `u32` byte-length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string longer than u32::MAX bytes"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("blob longer than u32::MAX bytes"));
        self.buf.extend_from_slice(bytes);
    }

    /// Write a sequence of little-endian `u64`s with a `u32` count prefix
    /// (used for precomputed window-key sets in classifier artifacts).
    pub fn put_u64_seq(&mut self, values: &[u64]) {
        self.put_u32(u32::try_from(values.len()).expect("sequence longer than u32::MAX items"));
        for &v in values {
            self.put_u64(v);
        }
    }

    /// Write a `u64` as a LEB128 variable-length integer (1–10 bytes; small
    /// values take one byte).
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Write a **sorted (non-decreasing)** `u64` sequence as a `u32` count
    /// prefix followed by varint-encoded deltas between consecutive values
    /// (the first delta is taken from zero). Sorted window-key sets compress
    /// to roughly the entropy of their gaps instead of 8 bytes per key.
    ///
    /// Panics if `values` is not sorted — the delta encoding is only defined
    /// for non-decreasing input ([`ByteReader::get_u64_delta_seq`] restores
    /// exactly such sequences).
    pub fn put_u64_delta_seq(&mut self, values: &[u64]) {
        self.put_u32(u32::try_from(values.len()).expect("sequence longer than u32::MAX items"));
        let mut prev = 0u64;
        for &v in values {
            let delta = v
                .checked_sub(prev)
                .expect("delta sequence requires sorted (non-decreasing) input");
            self.put_uvarint(delta);
            prev = v;
        }
    }
}

/// Sequential binary reader over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset (for error reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(
            bytes.try_into().expect("length checked"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(
            bytes.try_into().expect("length checked"),
        ))
    }

    /// Read a `usize` written with [`ByteWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CodecError::new(format!("usize value {v} overflows this platform")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool byte (must be 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("invalid bool byte {other:#04x}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::new(format!("invalid UTF-8 string: {e}")))
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a sequence of `u64`s written with [`ByteWriter::put_u64_seq`].
    ///
    /// The count is validated against the remaining input *before* any
    /// allocation, so a corrupt length prefix fails cleanly instead of
    /// attempting a huge reservation.
    pub fn get_u64_seq(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.get_u32()? as usize;
        let bytes = n.checked_mul(8).ok_or_else(|| {
            CodecError::new(format!("u64 sequence count {n} overflows byte length"))
        })?;
        if self.remaining() < bytes {
            return Err(CodecError::new(format!(
                "u64 sequence of {n} items needs {bytes} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.get_u64()?);
        }
        Ok(values)
    }

    /// Read a LEB128 variable-length `u64` written with
    /// [`ByteWriter::put_uvarint`].
    pub fn get_uvarint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            let bits = u64::from(byte & 0x7F);
            if shift == 63 && bits > 1 {
                return Err(CodecError::new(format!(
                    "varint overflows u64 at offset {}",
                    self.pos
                )));
            }
            if shift > 63 {
                return Err(CodecError::new(format!(
                    "varint longer than 10 bytes at offset {}",
                    self.pos
                )));
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Read a sorted `u64` sequence written with
    /// [`ByteWriter::put_u64_delta_seq`]. The result is non-decreasing by
    /// construction; a delta that would overflow `u64` is rejected cleanly.
    pub fn get_u64_delta_seq(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.get_u32()? as usize;
        // Every encoded value costs at least one byte, so the count can be
        // validated against the remaining input before any allocation.
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "delta sequence of {n} items needs at least {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let mut values = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            let delta = self.get_uvarint()?;
            prev = prev.checked_add(delta).ok_or_else(|| {
                CodecError::new(format!(
                    "delta sequence overflows u64 at offset {}",
                    self.pos
                ))
            })?;
            values.push(prev);
        }
        Ok(values)
    }

    /// Assert the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }
}

/// FNV-1a 64-bit checksum, used to detect artifact corruption.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(0xCBF2_9CE4_8422_2325, bytes)
}

/// Continue an FNV-1a 64-bit checksum from a previous state, so
/// non-contiguous buffers can be checksummed without concatenating them:
/// `fnv1a64_continue(fnv1a64(a), b)` equals `fnv1a64` of `a` followed by
/// `b`.
pub fn fnv1a64_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 7);
        w.put_usize(987_654);
        w.put_f64(-0.125);
        w.put_f64(f64::INFINITY);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("hello µ world");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_usize().unwrap(), 987_654);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hello µ world");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_str("a long enough string");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn nan_bit_pattern_roundtrips() {
        let mut w = ByteWriter::new();
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64().unwrap().is_nan());
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert!(r.get_bool().is_err());
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        let _ = r.get_u8();
        assert!(r.expect_end().is_err());
        let _ = r.get_u8();
        let _ = r.get_u8();
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn u64_seq_roundtrips_and_rejects_bad_counts() {
        let values = vec![0u64, 1, u64::MAX, 42];
        let mut w = ByteWriter::new();
        w.put_u64_seq(&values);
        w.put_u64_seq(&[]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64_seq().unwrap(), values);
        assert_eq!(r.get_u64_seq().unwrap(), Vec::<u64>::new());
        assert!(r.expect_end().is_ok());

        // A count prefix claiming far more items than the input holds must
        // fail without allocating.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u64_seq().is_err());
    }

    #[test]
    fn uvarint_roundtrips_edge_values() {
        let values = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            123_456_789,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_uvarint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_uvarint().unwrap(), v);
        }
        assert!(r.expect_end().is_ok());

        // Small values take one byte; u64::MAX takes the maximal 10.
        let mut w = ByteWriter::new();
        w.put_uvarint(0x7F);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_uvarint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn uvarint_rejects_overflow_and_truncation() {
        // 10 continuation bytes followed by a large final byte overflows.
        let mut r = ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
        assert!(r.get_uvarint().is_err());
        // An 11-byte varint is malformed regardless of value.
        let mut r = ByteReader::new(&[
            0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
        ]);
        assert!(r.get_uvarint().is_err());
        // Truncated mid-varint.
        let mut r = ByteReader::new(&[0x80]);
        assert!(r.get_uvarint().is_err());
    }

    #[test]
    fn delta_seq_roundtrips_and_is_compact() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![0, 0, 0],
            vec![7, 7, 9, 1000, 1001, u64::MAX],
            (0..500u64).map(|i| i * 3).collect(),
        ];
        for values in &cases {
            let mut w = ByteWriter::new();
            w.put_u64_delta_seq(values);
            let plain_len = 4 + 8 * values.len();
            assert!(w.len() <= plain_len, "delta encoding must never be larger");
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&r.get_u64_delta_seq().unwrap(), values);
            assert!(r.expect_end().is_ok());
        }
        // Small sorted gaps compress far below 8 bytes per key.
        let keys: Vec<u64> = (0..100u64).map(|i| i * 17).collect();
        let mut w = ByteWriter::new();
        w.put_u64_delta_seq(&keys);
        assert!(w.len() < 4 + 2 * keys.len() + 8);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn delta_seq_rejects_unsorted_input() {
        let mut w = ByteWriter::new();
        w.put_u64_delta_seq(&[5, 3]);
    }

    #[test]
    fn delta_seq_rejects_bad_counts_and_overflow() {
        // A count prefix claiming more items than bytes remain fails before
        // allocating.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u64_delta_seq().is_err());

        // Accumulated deltas that overflow u64 are rejected.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_uvarint(u64::MAX);
        w.put_uvarint(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u64_delta_seq().is_err());
    }

    #[test]
    fn fnv_checksum_is_stable_and_sensitive() {
        let a = fnv1a64(b"hello");
        assert_eq!(a, fnv1a64(b"hello"));
        assert_ne!(a, fnv1a64(b"hellp"));
        assert_ne!(fnv1a64(b""), 0);
    }
}
