//! Data-parallel helpers built on `std::thread::scope`.
//!
//! The workloads in this workspace (fuzzy hashing a corpus, computing an
//! `n_test x n_train` similarity matrix, growing forest trees) are
//! embarrassingly parallel: every output element depends only on read-only
//! shared inputs. Rather than pulling in a full work-stealing runtime we use
//! a chunked atomic-counter scheduler over standard-library scoped threads,
//! which guarantees data-race freedom through the type system (the closure
//! only receives `&T` items and returns owned results).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Whether the current thread is a parallel worker (a scoped `par_map`
    /// worker or a [`WorkerPool`](crate::pool::WorkerPool) thread).
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already a parallel worker.
///
/// Nested-parallelism guard: code that fans out per item (e.g. scoring the
/// shards of a partitioned reference set) can check this flag and degrade to
/// a serial loop when it is *already* running inside a batch worker, instead
/// of multiplying `batch workers x inner fan-out` threads.
pub fn in_parallel_worker() -> bool {
    IN_PARALLEL_WORKER.with(Cell::get)
}

/// Mark the current thread as a parallel worker (for the rest of its life).
/// Called by `par_map` workers and pool worker threads at startup; worker
/// threads never outlive their parallel context, so the flag is never reset.
pub(crate) fn mark_parallel_worker() {
    IN_PARALLEL_WORKER.with(|flag| flag.set(true));
}

/// Configuration for the parallel helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads. `0` means "use available parallelism".
    pub threads: usize,
    /// Number of items a worker claims per scheduling step. Larger chunks
    /// reduce contention on the shared counter; smaller chunks improve load
    /// balance when per-item cost varies (e.g. hashing differently sized
    /// executables).
    pub chunk: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk: 8,
        }
    }
}

impl ParallelConfig {
    /// A configuration pinned to a specific number of threads.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, chunk: 8 }
    }

    /// Builder-style chunk override.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// One item per scheduling step on up to `threads` workers (`0` means
    /// "use available parallelism"). The right shape for a few coarse,
    /// possibly uneven tasks — e.g. scoring the shards of a partitioned
    /// reference set — where per-item cost dwarfs scheduling overhead.
    pub fn per_item(threads: usize) -> Self {
        Self { threads, chunk: 1 }
    }

    /// Resolve the effective worker count for `n_items` items.
    pub fn effective_threads(&self, n_items: usize) -> usize {
        let hw = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        hw.max(1).min(n_items.max(1))
    }

    /// Resolve the effective chunk size (never zero).
    pub fn effective_chunk(&self) -> usize {
        self.chunk.max(1)
    }
}

/// Apply `f` to every element of `items` in parallel, preserving order.
///
/// Equivalent to `items.iter().map(f).collect()` but distributed over worker
/// threads. Falls back to the sequential path for small inputs or when only
/// one thread is available.
///
/// # Examples
///
/// ```
/// use hpcutil::par::{par_map, ParallelConfig};
/// let xs: Vec<u64> = (0..1000).collect();
/// let squares = par_map(&xs, ParallelConfig::default(), |&x| x * x);
/// assert_eq!(squares[10], 100);
/// assert_eq!(squares.len(), xs.len());
/// ```
pub fn par_map<T, R, F>(items: &[T], config: ParallelConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), config, |i| f(&items[i]))
}

/// Apply `f` to every index in `0..n` in parallel, preserving order.
///
/// This is the index-based variant of [`par_map`]; it is useful when the
/// "items" are rows of a matrix or pairs derived from an index rather than a
/// materialized slice.
///
/// # Examples
///
/// ```
/// use hpcutil::par::{par_map_indexed, ParallelConfig};
/// let doubled = par_map_indexed(5, ParallelConfig::default(), |i| i * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn par_map_indexed<R, F>(n: usize, config: ParallelConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = config.effective_threads(n);
    let chunk = config.effective_chunk();
    if threads <= 1 || n <= chunk {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let counter = AtomicUsize::new(0);
    let f = &f;

    // Each worker claims disjoint index chunks, so every slot is written by
    // exactly one thread. We hand each worker a raw split of the slot vector
    // via chunk-claiming over a shared &mut [Option<R>] using interior
    // partitioning: to stay in safe Rust we instead collect per-worker
    // (index, value) pairs and scatter afterwards.
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let counter = &counter;
            handles.push(scope.spawn(move || {
                mark_parallel_worker();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = counter.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        local.push((i, f(i)));
                    }
                }
                local
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("parallel worker panicked"));
        }
    });

    for bucket in per_worker {
        for (i, value) in bucket {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("parallel map left a hole"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let xs: Vec<u32> = (0..257).collect();
        let expected: Vec<u64> = xs.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        let got = par_map(&xs, ParallelConfig::default(), |&x| u64::from(x) * 3 + 1);
        assert_eq!(got, expected);
    }

    #[test]
    fn par_map_empty_input() {
        let xs: Vec<u32> = Vec::new();
        let got: Vec<u32> = par_map(&xs, ParallelConfig::default(), |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        let xs = vec![41];
        let got = par_map(&xs, ParallelConfig::with_threads(4), |&x| x + 1);
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let got = par_map_indexed(
            1000,
            ParallelConfig {
                threads: 7,
                chunk: 3,
            },
            |i| i as i64 - 5,
        );
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as i64 - 5);
        }
    }

    #[test]
    fn par_map_indexed_zero() {
        let got: Vec<usize> = par_map_indexed(0, ParallelConfig::default(), |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let xs: Vec<u32> = (0..100).collect();
        let got = par_map(&xs, ParallelConfig::with_threads(1), |&x| x * 2);
        assert_eq!(got, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_bounded_by_items() {
        let cfg = ParallelConfig::with_threads(64);
        assert_eq!(cfg.effective_threads(3), 3);
        assert_eq!(cfg.effective_threads(0), 1);
    }

    #[test]
    fn per_item_and_with_chunk_build_expected_configs() {
        assert_eq!(
            ParallelConfig::per_item(3),
            ParallelConfig {
                threads: 3,
                chunk: 1
            }
        );
        assert_eq!(
            ParallelConfig::with_threads(2).with_chunk(16),
            ParallelConfig {
                threads: 2,
                chunk: 16
            }
        );
    }

    #[test]
    fn effective_chunk_never_zero() {
        let cfg = ParallelConfig {
            threads: 2,
            chunk: 0,
        };
        assert_eq!(cfg.effective_chunk(), 1);
    }

    #[test]
    fn parallel_workers_are_marked_and_callers_are_not() {
        assert!(!in_parallel_worker());
        // Force the threaded path: many items, tiny chunk, several threads.
        let flags = par_map_indexed(
            64,
            ParallelConfig {
                threads: 4,
                chunk: 1,
            },
            |_| in_parallel_worker(),
        );
        assert!(flags.iter().all(|&f| f), "every worker must be marked");
        // The calling thread itself stays unmarked.
        assert!(!in_parallel_worker());
        // The sequential fallback runs on the caller and stays unmarked too.
        let flags = par_map_indexed(3, ParallelConfig::with_threads(1), |_| in_parallel_worker());
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn uneven_per_item_cost_still_correct() {
        // Items with wildly different cost exercise the load balancer.
        let xs: Vec<usize> = (0..64).collect();
        let got = par_map(
            &xs,
            ParallelConfig {
                threads: 4,
                chunk: 1,
            },
            |&x| {
                let mut acc = 0u64;
                for i in 0..(x * 1000) {
                    acc = acc.wrapping_add(i as u64);
                }
                (x as u64, acc)
            },
        );
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(*idx, i as u64);
        }
    }
}
