//! Lightweight section timing for pipeline stages.

use std::time::{Duration, Instant};

/// Records named sections of wall-clock time.
///
/// # Examples
///
/// ```
/// use hpcutil::SectionTimer;
/// let mut timer = SectionTimer::new();
/// timer.start("hash");
/// // ... work ...
/// timer.stop();
/// assert_eq!(timer.sections().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SectionTimer {
    sections: Vec<(String, Duration)>,
    current: Option<(String, Instant)>,
}

impl SectionTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a named section, finishing any section already in progress.
    pub fn start(&mut self, name: &str) {
        self.stop();
        self.current = Some((name.to_string(), Instant::now()));
    }

    /// Finish the section in progress, if any.
    pub fn stop(&mut self) {
        if let Some((name, started)) = self.current.take() {
            self.sections.push((name, started.elapsed()));
        }
    }

    /// All finished sections in start order.
    pub fn sections(&self) -> &[(String, Duration)] {
        &self.sections
    }

    /// Total time across all finished sections.
    pub fn total(&self) -> Duration {
        self.sections.iter().map(|(_, d)| *d).sum()
    }

    /// Render a short human-readable summary, one line per section.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, dur) in &self.sections {
            out.push_str(&format!("{:<24} {:>10.3} s\n", name, dur.as_secs_f64()));
        }
        out.push_str(&format!(
            "{:<24} {:>10.3} s\n",
            "total",
            self.total().as_secs_f64()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sections_in_order() {
        let mut t = SectionTimer::new();
        t.start("a");
        t.start("b");
        t.stop();
        assert_eq!(t.sections().len(), 2);
        assert_eq!(t.sections()[0].0, "a");
        assert_eq!(t.sections()[1].0, "b");
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut t = SectionTimer::new();
        t.stop();
        assert!(t.sections().is_empty());
    }

    #[test]
    fn total_is_sum() {
        let mut t = SectionTimer::new();
        t.start("x");
        t.stop();
        t.start("y");
        t.stop();
        assert!(t.total() >= t.sections()[0].1);
        assert!(t.summary().contains("total"));
    }
}
