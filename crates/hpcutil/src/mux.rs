//! A thread-based connection multiplexer: many callers, one stream.
//!
//! [`pool`](crate::pool) parallelizes compute; this module parallelizes
//! *conversations*. A [`Mux`] owns one bidirectional stream (typically a
//! socket already past its application handshake) and runs two dedicated
//! threads over it:
//!
//! * the **writer** thread drains a queue of pre-encoded frames and puts
//!   them on the wire with as few syscalls as possible — consecutive queued
//!   frames are coalesced into a single `write_all`;
//! * the **reader** thread incrementally reassembles [`frame`](crate::frame)s
//!   from the stream and routes each decoded reply to the caller that asked
//!   for it, by the request id the caller-supplied decode function extracts
//!   from the payload.
//!
//! Callers interact through [`Mux::submit`]: hand over the complete wire
//! bytes of a request, get a [`PendingReply`] back, and
//! [`PendingReply::wait`] for the decoded response. Any number of threads
//! may submit concurrently; their requests *pipeline* over the single
//! stream instead of serializing around a connection mutex, and no caller
//! ever holds a lock across a round trip.
//!
//! Failure is sticky: the first transport, framing, decode, or stall error
//! **poisons** the multiplexer. Every in-flight and future request fails
//! with (a clone of) the same [`MuxError`], and the closer hook supplied at
//! spawn is invoked so a thread blocked in `read` on the same stream is
//! woken — for sockets, a `shutdown`. A poisoned mux never hands out data
//! from a stream whose framing can no longer be trusted.
//!
//! Stall detection: the reader performs raw `read` calls into a reassembly
//! buffer, so a socket read timeout does not tear a frame — it simply wakes
//! the reader, which checks whether any in-flight request has been waiting
//! longer than [`MuxOptions::reply_deadline`] and poisons the mux if so.
//! Without a read timeout on the underlying stream (or with a deadline of
//! `None`) the reader blocks indefinitely and stalls are never detected.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame header length on the wire (tag byte + `u32` payload length).
const HEADER_LEN: usize = 5;
/// Frame trailer length on the wire (`u64` FNV-1a checksum).
const CHECKSUM_LEN: usize = 8;
/// Read granularity of the reader thread's reassembly loop.
const READ_CHUNK: usize = 64 * 1024;
/// The writer stops coalescing queued frames once the pending write grows
/// past this size, bounding latency and memory per syscall.
const WRITE_COALESCE_LIMIT: usize = 256 * 1024;

/// Why a multiplexed request failed. Cloneable so one connection failure
/// can fan out to every caller that had a request in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxErrorKind {
    /// The underlying transport failed (includes EOF from the peer).
    Io,
    /// The stream bytes stopped forming valid frames (bad length prefix,
    /// checksum mismatch).
    Frame,
    /// A structurally valid frame could not be decoded into a reply, or a
    /// reply arrived for an id that was never submitted.
    Decode,
    /// The peer reported an application-level error instead of a reply.
    Remote,
    /// An in-flight request outlived the reply deadline.
    Stalled,
    /// The multiplexer was dropped (or its writer thread is gone).
    Closed,
}

/// A failure of the multiplexed connection, delivered to every affected
/// caller.
#[derive(Debug, Clone)]
pub struct MuxError {
    /// What class of failure this is.
    pub kind: MuxErrorKind,
    /// Human-readable detail.
    pub detail: String,
}

impl MuxError {
    /// An error of `kind` with `detail`.
    pub fn new(kind: MuxErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let detail = &self.detail;
        match self.kind {
            MuxErrorKind::Io => write!(f, "multiplexed connection i/o error: {detail}"),
            MuxErrorKind::Frame => write!(f, "malformed frame on multiplexed connection: {detail}"),
            MuxErrorKind::Decode => {
                write!(f, "undecodable reply on multiplexed connection: {detail}")
            }
            MuxErrorKind::Remote => write!(f, "peer reported an error: {detail}"),
            MuxErrorKind::Stalled => write!(f, "multiplexed connection stalled: {detail}"),
            MuxErrorKind::Closed => write!(f, "multiplexer closed: {detail}"),
        }
    }
}

impl std::error::Error for MuxError {}

/// Tuning knobs for [`Mux::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct MuxOptions {
    /// Largest frame payload the reader will accept; a length prefix above
    /// this poisons the mux without allocating.
    pub max_payload: usize,
    /// How long an in-flight request may wait before the connection is
    /// declared stalled and poisoned. Checked whenever the underlying
    /// stream's read times out, so detection granularity is the socket
    /// read timeout. `None` disables stall detection.
    pub reply_deadline: Option<Duration>,
}

impl Default for MuxOptions {
    fn default() -> Self {
        Self {
            max_payload: 16 << 20,
            reply_deadline: None,
        }
    }
}

/// How many abandoned request ids the mux remembers. Hedged requests
/// abandon their losing duplicate as a matter of course, so the set must
/// not grow without bound on a long-lived connection; the oldest entries
/// are reaped once the cap is hit. A late reply for a *reaped* id is still
/// discarded quietly — the submit high-water mark (see
/// [`MuxState::high_water`]) proves the id was once ours.
const ABANDONED_LIMIT: usize = 1024;

/// Book-keeping protected by one short-lived lock: requests awaiting a
/// reply, requests whose caller gave up, and the sticky first error.
struct MuxState<R> {
    pending: HashMap<u64, (Instant, SyncSender<Result<R, MuxError>>)>,
    /// Ids whose [`PendingReply`] was dropped before the reply arrived; a
    /// late reply for one of these is discarded instead of treated as a
    /// protocol violation. Bounded by [`ABANDONED_LIMIT`].
    abandoned: HashSet<u64>,
    /// Insertion order of `abandoned`, for oldest-first reaping. May hold
    /// stale entries for ids already drained by a late reply; reaping
    /// skips those.
    abandoned_order: VecDeque<u64>,
    /// The highest request id ever submitted on this mux. A reply whose id
    /// is neither pending nor abandoned but at or below this mark belongs
    /// to a reaped abandoned request (or is a duplicate of an answered
    /// one) and is discarded quietly; an id *above* it was invented by the
    /// peer and poisons the connection.
    high_water: Option<u64>,
    poisoned: Option<MuxError>,
}

struct Shared<R> {
    state: Mutex<MuxState<R>>,
    closer: Box<dyn Fn() + Send + Sync>,
    closed: AtomicBool,
    peer: String,
}

impl<R> Shared<R> {
    fn lock(&self) -> std::sync::MutexGuard<'_, MuxState<R>> {
        // A panic can only occur in caller code outside the lock; the
        // guarded state is always internally consistent.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record the first error, fail every in-flight request with it, and
    /// fire the closer hook (once) to unblock the other I/O thread.
    fn poison(&self, err: MuxError) {
        let (err, drained) = {
            let mut st = self.lock();
            let err = st.poisoned.get_or_insert(err).clone();
            let drained: Vec<_> = st.pending.drain().map(|(_, (_, tx))| tx).collect();
            st.abandoned.clear();
            st.abandoned_order.clear();
            (err, drained)
        };
        for tx in drained {
            let _ = tx.send(Err(err.clone()));
        }
        if !self.closed.swap(true, Ordering::SeqCst) {
            (self.closer)();
        }
    }

    /// Route one decoded reply to its waiter. A reply for an abandoned id
    /// — or for an id at or below the submit high-water mark whose
    /// abandoned entry was already reaped or drained — is discarded
    /// quietly. Returns `false` (after poisoning) only when the id was
    /// *never* submitted — a stream that invents correlation ids cannot be
    /// trusted.
    fn deliver(&self, id: u64, reply: R) -> bool {
        enum Route<R> {
            Waiter(SyncSender<Result<R, MuxError>>),
            Discard,
            Unknown,
        }
        let route = {
            let mut st = self.lock();
            match st.pending.remove(&id) {
                Some((_, tx)) => Route::Waiter(tx),
                None if st.abandoned.remove(&id) => Route::Discard,
                // The id was once submitted here but is no longer tracked:
                // its abandoned entry was reaped at ABANDONED_LIMIT, or
                // the peer answered it twice. Either way this is a stale
                // duplicate of our own traffic, not an invented id.
                None if st.high_water.is_some_and(|hw| id <= hw) => Route::Discard,
                None => Route::Unknown,
            }
        };
        match route {
            Route::Waiter(tx) => {
                // A failed send means the waiter gave up between our map
                // lookup and the send; the reply is simply discarded.
                let _ = tx.send(Ok(reply));
                true
            }
            Route::Discard => true,
            Route::Unknown => {
                self.poison(MuxError::new(
                    MuxErrorKind::Decode,
                    format!("reply for unknown request id {id}"),
                ));
                false
            }
        }
    }

    fn has_stalled(&self, deadline: Option<Duration>) -> bool {
        let Some(deadline) = deadline else {
            return false;
        };
        self.lock()
            .pending
            .values()
            .any(|(since, _)| since.elapsed() >= deadline)
    }
}

/// A multiplexed request/reply connection; see the [module docs](self).
///
/// `R` is the decoded reply type produced by the decode function given to
/// [`Mux::spawn`]. Dropping the mux closes the stream, fails all in-flight
/// requests with [`MuxErrorKind::Closed`], and joins both I/O threads.
pub struct Mux<R> {
    shared: Arc<Shared<R>>,
    write_tx: Option<SyncSender<Vec<u8>>>,
    threads: Vec<JoinHandle<()>>,
}

/// Bound on the writer thread's frame queue. A peer (or network) that stops
/// draining writes eventually blocks submitters here instead of letting the
/// queue grow without limit; the socket write deadline then converts a hard
/// stall into a poison, which unblocks everyone with a typed error.
const WRITE_QUEUE_DEPTH: usize = 1024;

impl<R> std::fmt::Debug for Mux<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mux")
            .field("peer", &self.shared.peer)
            .field("in_flight", &self.in_flight())
            .field("poisoned", &self.is_poisoned())
            .finish()
    }
}

impl<R: Send + 'static> Mux<R> {
    /// Take ownership of the two halves of a connected stream and start the
    /// writer and reader threads.
    ///
    /// `decode` turns one verified frame (tag + payload) into
    /// `(request id, reply)`; returning an error poisons the mux with it —
    /// use [`MuxErrorKind::Remote`] for application-level error frames and
    /// [`MuxErrorKind::Decode`] for frames that should not occur.
    ///
    /// `closer` must unblock a thread stuck in `read`/`write` on the same
    /// stream (for sockets: `shutdown`); it is called at most once, on
    /// poison or drop, and must be idempotent-safe.
    ///
    /// Fails with [`MuxErrorKind::Io`] if an I/O thread cannot be spawned
    /// (resource exhaustion); the half-started mux is torn down cleanly.
    pub fn spawn<D>(
        peer: impl Into<String>,
        reader: Box<dyn Read + Send>,
        writer: Box<dyn Write + Send>,
        closer: Box<dyn Fn() + Send + Sync>,
        options: MuxOptions,
        decode: D,
    ) -> Result<Self, MuxError>
    where
        D: Fn(u8, Vec<u8>) -> Result<(u64, R), MuxError> + Send + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(MuxState {
                pending: HashMap::new(),
                abandoned: HashSet::new(),
                abandoned_order: VecDeque::new(),
                high_water: None,
                poisoned: None,
            }),
            closer,
            closed: AtomicBool::new(false),
            peer: peer.into(),
        });
        let (write_tx, write_rx) = sync_channel::<Vec<u8>>(WRITE_QUEUE_DEPTH);
        let writer_shared = Arc::clone(&shared);
        let reader_shared = Arc::clone(&shared);
        let writer_thread = std::thread::Builder::new()
            .name("mux-writer".into())
            .spawn(move || writer_loop(writer, &write_rx, &writer_shared))
            .map_err(|e| {
                MuxError::new(MuxErrorKind::Io, format!("spawning the mux writer: {e}"))
            })?;
        let reader_thread = match std::thread::Builder::new()
            .name("mux-reader".into())
            .spawn(move || reader_loop(reader, &reader_shared, &decode, options))
        {
            Ok(handle) => handle,
            Err(e) => {
                // Unwind the half-started mux: closing the queue stops the
                // writer, the closer hook releases the stream.
                drop(write_tx);
                shared.poison(MuxError::new(
                    MuxErrorKind::Closed,
                    "mux spawn aborted before the reader thread started",
                ));
                let _ = writer_thread.join();
                return Err(MuxError::new(
                    MuxErrorKind::Io,
                    format!("spawning the mux reader: {e}"),
                ));
            }
        };
        Ok(Self {
            shared,
            write_tx: Some(write_tx),
            threads: vec![writer_thread, reader_thread],
        })
    }

    /// Queue one pre-encoded request frame for writing and register `id`
    /// for reply correlation. Returns immediately; the round trip happens
    /// on the mux threads while the caller does other work (or
    /// [`PendingReply::wait`]s).
    ///
    /// `id` must be unique among this mux's in-flight *and* abandoned
    /// requests — the natural source is a per-connection or shared atomic
    /// counter. A submit that reuses such an id is rejected with a typed
    /// [`MuxErrorKind::Decode`] error (through the returned handle, without
    /// poisoning the connection): registering it anyway could cross-wire
    /// the old request's late reply into the new caller.
    pub fn submit(&self, id: u64, frame_bytes: Vec<u8>) -> PendingReply<R> {
        // Oneshot: exactly one of deliver/poison ever sends, so capacity 1
        // means the sender can never block.
        let (tx, rx) = sync_channel(1);
        let pending = PendingReply {
            rx,
            id,
            shared: Arc::clone(&self.shared),
            waited: false,
        };
        {
            let mut st = self.shared.lock();
            if let Some(err) = &st.poisoned {
                let _ = tx.send(Err(err.clone()));
                return pending;
            }
            if st.pending.contains_key(&id) || st.abandoned.contains(&id) {
                let _ = tx.send(Err(MuxError::new(
                    MuxErrorKind::Decode,
                    format!("request id {id} is already in flight or awaiting reply drain"),
                )));
                return pending;
            }
            st.high_water = Some(st.high_water.map_or(id, |hw| hw.max(id)));
            st.pending.insert(id, (Instant::now(), tx));
        }
        // The queue exists from construction until drop; mid-drop, fail the
        // request the same way a dead writer thread would.
        let Some(sender) = self.write_tx.as_ref() else {
            self.shared
                .poison(MuxError::new(MuxErrorKind::Closed, "writer thread is gone"));
            return pending;
        };
        if sender.send(frame_bytes).is_err() {
            // The writer thread poisons before exiting, so this is already
            // (or is about to be) reflected in the pending map; make sure
            // regardless.
            self.shared
                .poison(MuxError::new(MuxErrorKind::Closed, "writer thread is gone"));
        }
        pending
    }
}

impl<R> Mux<R> {
    /// The peer name given at spawn (used in error details).
    pub fn peer(&self) -> &str {
        &self.shared.peer
    }

    /// Whether the connection has failed; every subsequent submit returns
    /// the original error.
    pub fn is_poisoned(&self) -> bool {
        self.shared.lock().poisoned.is_some()
    }

    /// Number of requests currently awaiting a reply.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().pending.len()
    }
}

impl<R> Drop for Mux<R> {
    fn drop(&mut self) {
        drop(self.write_tx.take());
        self.shared
            .poison(MuxError::new(MuxErrorKind::Closed, "multiplexer dropped"));
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A handle to one in-flight request; [`PendingReply::wait`] blocks until
/// the reply (or the connection's failure) arrives. Dropping it without
/// waiting abandons the request: a late reply is discarded quietly.
pub struct PendingReply<R> {
    rx: Receiver<Result<R, MuxError>>,
    id: u64,
    shared: Arc<Shared<R>>,
    waited: bool,
}

impl<R> std::fmt::Debug for PendingReply<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingReply")
            .field("id", &self.id)
            .finish()
    }
}

impl<R> PendingReply<R> {
    /// Block until the reply arrives, the connection fails, or the mux is
    /// dropped.
    pub fn wait(mut self) -> Result<R, MuxError> {
        self.waited = true;
        match self.rx.recv() {
            Ok(result) => result,
            // Unreachable in practice: the sender is either in the pending
            // map (drained with an error on poison) or used to deliver.
            Err(_) => Err(MuxError::new(
                MuxErrorKind::Closed,
                "reply channel closed without a reply",
            )),
        }
    }

    /// Wait up to `timeout` for the reply without consuming the handle —
    /// the primitive a *hedged* request is built from: poll the primary
    /// for its hedge deadline, fire the replica on `None`, then alternate
    /// polls until one connection answers and drop the loser (its late
    /// reply is drained quietly).
    ///
    /// Returns `Some` the first time the reply (or the connection's
    /// failure) arrives; the handle is spent after that — keep the result,
    /// further polls would time out forever.
    pub fn poll_timeout(&mut self, timeout: Duration) -> Option<Result<R, MuxError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => {
                self.waited = true;
                Some(result)
            }
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                self.waited = true;
                Some(Err(MuxError::new(
                    MuxErrorKind::Closed,
                    "reply channel closed without a reply",
                )))
            }
        }
    }
}

impl<R> Drop for PendingReply<R> {
    fn drop(&mut self) {
        if self.waited {
            return;
        }
        let mut st = self.shared.lock();
        if st.pending.remove(&self.id).is_some() {
            st.abandoned.insert(self.id);
            st.abandoned_order.push_back(self.id);
            // Reap oldest-first past the cap; entries already drained by a
            // late reply are skipped (their set entry is gone).
            while st.abandoned.len() > ABANDONED_LIMIT {
                match st.abandoned_order.pop_front() {
                    Some(old) => {
                        st.abandoned.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }
}

fn writer_loop<R>(mut writer: Box<dyn Write + Send>, rx: &Receiver<Vec<u8>>, shared: &Shared<R>) {
    while let Ok(mut buf) = rx.recv() {
        // Coalesce whatever else is already queued into the same syscall.
        while buf.len() < WRITE_COALESCE_LIMIT {
            match rx.try_recv() {
                Ok(next) => buf.extend_from_slice(&next),
                Err(_) => break,
            }
        }
        // Failpoint: corrupt the coalesced write (detectable downstream via
        // the frame checksum) or kill the writer thread as a transport
        // failure would.
        match crate::failpoint::hit("mux.writer") {
            None => {}
            Some(crate::failpoint::Fault::CorruptByte(i)) => {
                let index = i % buf.len();
                buf[index] ^= 0x40;
            }
            Some(_) => {
                shared.poison(MuxError::new(
                    MuxErrorKind::Io,
                    "failpoint mux.writer: injected write failure",
                ));
                return;
            }
        }
        if let Err(e) = writer.write_all(&buf).and_then(|()| writer.flush()) {
            shared.poison(MuxError::new(
                MuxErrorKind::Io,
                format!("write failed: {e}"),
            ));
            return;
        }
    }
    // Queue closed: the mux is being dropped.
}

/// If `buf` starts with a complete frame, its total length; `None` when
/// more bytes are needed; an error when the length prefix is over budget.
fn frame_extent(buf: &[u8], max_payload: usize) -> Result<Option<usize>, MuxError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > max_payload {
        return Err(MuxError::new(
            MuxErrorKind::Frame,
            format!("frame payload of {len} bytes exceeds the {max_payload}-byte limit"),
        ));
    }
    Ok((buf.len() >= HEADER_LEN + len + CHECKSUM_LEN).then_some(HEADER_LEN + len + CHECKSUM_LEN))
}

fn reader_loop<R>(
    mut reader: Box<dyn Read + Send>,
    shared: &Shared<R>,
    decode: &(impl Fn(u8, Vec<u8>) -> Result<(u64, R), MuxError> + Send),
    options: MuxOptions,
) {
    // Raw reads into a reassembly buffer instead of blocking `read_exact`
    // calls: a read timeout then never tears a frame mid-parse, it just
    // wakes the loop for the stall check below.
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        // Drain every complete frame currently buffered.
        loop {
            let total = match frame_extent(&buf, options.max_payload) {
                Ok(Some(total)) => total,
                Ok(None) => break,
                Err(e) => {
                    shared.poison(e);
                    return;
                }
            };
            // Re-read the complete frame through the checksummed codec so
            // corruption is caught exactly as on the blocking path.
            let parsed = crate::frame::read_frame(
                &mut std::io::Cursor::new(&buf[..total]),
                options.max_payload,
            );
            buf.drain(..total);
            let (tag, payload) = match parsed {
                Ok(frame) => frame,
                Err(e) => {
                    shared.poison(MuxError::new(MuxErrorKind::Frame, e.to_string()));
                    return;
                }
            };
            match decode(tag, payload) {
                Ok((id, reply)) => {
                    if !shared.deliver(id, reply) {
                        return;
                    }
                }
                Err(e) => {
                    shared.poison(e);
                    return;
                }
            }
        }
        // Failpoint: fail the reader thread before the next read, exactly
        // as a dropped or reset connection would surface here.
        if crate::failpoint::hit("mux.reader").is_some() {
            shared.poison(MuxError::new(
                MuxErrorKind::Io,
                "failpoint mux.reader: injected read failure",
            ));
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                shared.poison(MuxError::new(MuxErrorKind::Io, "connection closed by peer"));
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if let Some(deadline) = options.reply_deadline {
                    if shared.has_stalled(Some(deadline)) {
                        shared.poison(MuxError::new(
                            MuxErrorKind::Stalled,
                            format!("no reply within {deadline:?}"),
                        ));
                        return;
                    }
                }
            }
            Err(e) => {
                shared.poison(MuxError::new(MuxErrorKind::Io, e.to_string()));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};
    use std::net::{Shutdown, TcpListener, TcpStream};

    /// Spawn a one-connection frame server; `serve` gets the accepted
    /// stream. Returns the address to dial.
    fn frame_server(serve: impl FnOnce(TcpStream) + Send + 'static) -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            serve(stream);
        });
        (addr, handle)
    }

    /// Connect to `addr` and build a mux whose replies are `(tag, payload)`
    /// with the id parsed from the payload's first 8 bytes.
    fn connect_mux(addr: &str, options: MuxOptions) -> Mux<(u8, Vec<u8>)> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .expect("read timeout");
        let reader = stream.try_clone().expect("clone for reader");
        let closer = stream.try_clone().expect("clone for closer");
        Mux::spawn(
            addr.to_string(),
            Box::new(reader),
            Box::new(stream),
            Box::new(move || {
                let _ = closer.shutdown(Shutdown::Both);
            }),
            options,
            |tag, payload: Vec<u8>| {
                if payload.len() < 8 {
                    return Err(MuxError::new(MuxErrorKind::Decode, "reply too short"));
                }
                let id = u64::from_le_bytes(payload[..8].try_into().expect("fixed-size slice"));
                Ok((id, (tag, payload)))
            },
        )
        .expect("spawn mux threads")
    }

    fn request_bytes(tag: u8, id: u64, body: &[u8]) -> Vec<u8> {
        let mut payload = id.to_le_bytes().to_vec();
        payload.extend_from_slice(body);
        let mut frame = Vec::new();
        write_frame(&mut frame, tag, &payload).expect("vec write");
        frame
    }

    #[test]
    fn concurrent_submits_correlate_over_one_stream() {
        let (addr, server) = frame_server(|mut stream| {
            // Echo every frame back until the client hangs up.
            while let Ok((tag, payload)) = read_frame(&mut stream, 1 << 20) {
                write_frame(&mut stream, tag, &payload).expect("echo");
            }
        });
        let mux = Arc::new(connect_mux(&addr, MuxOptions::default()));
        let mut threads = Vec::new();
        for t in 0..8u64 {
            let mux = Arc::clone(&mux);
            threads.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let id = t * 1000 + i;
                    let body = format!("thread {t} request {i}").into_bytes();
                    let pending = mux.submit(id, request_bytes(7, id, &body));
                    let (tag, payload) = pending.wait().expect("echoed reply");
                    assert_eq!(tag, 7);
                    assert_eq!(&payload[8..], &body[..]);
                    assert_eq!(u64::from_le_bytes(payload[..8].try_into().unwrap()), id);
                }
            }));
        }
        for thread in threads {
            thread.join().expect("submitter thread");
        }
        assert_eq!(mux.in_flight(), 0);
        assert!(!mux.is_poisoned());
        let Ok(mux) = Arc::try_unwrap(mux) else {
            panic!("sole owner")
        };
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn out_of_order_replies_reach_the_right_waiters() {
        let (addr, server) = frame_server(|mut stream| {
            let first = read_frame(&mut stream, 1 << 20).expect("first request");
            let second = read_frame(&mut stream, 1 << 20).expect("second request");
            // Answer in reverse arrival order.
            write_frame(&mut stream, second.0, &second.1).expect("reply");
            write_frame(&mut stream, first.0, &first.1).expect("reply");
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        let p1 = mux.submit(1, request_bytes(3, 1, b"first"));
        let p2 = mux.submit(2, request_bytes(3, 2, b"second"));
        let (_, payload2) = p2.wait().expect("reply for id 2");
        let (_, payload1) = p1.wait().expect("reply for id 1");
        assert_eq!(&payload1[8..], b"first");
        assert_eq!(&payload2[8..], b"second");
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn peer_hangup_fails_pending_and_future_requests() {
        let (addr, server) = frame_server(|mut stream| {
            let _ = read_frame(&mut stream, 1 << 20);
            // Close without replying.
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        let err = mux
            .submit(1, request_bytes(3, 1, b"doomed"))
            .wait()
            .expect_err("peer hung up");
        assert_eq!(err.kind, MuxErrorKind::Io);
        assert!(mux.is_poisoned());
        // Subsequent submits fail immediately with the original error.
        let err = mux
            .submit(2, request_bytes(3, 2, b"late"))
            .wait()
            .expect_err("mux is poisoned");
        assert_eq!(err.kind, MuxErrorKind::Io);
        server.join().expect("server thread");
    }

    #[test]
    fn a_reply_for_an_unknown_id_poisons_the_mux() {
        let (addr, server) = frame_server(|mut stream| {
            let (tag, payload) = read_frame(&mut stream, 1 << 20).expect("request");
            let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
            let mut bad = (id + 1000).to_le_bytes().to_vec();
            bad.extend_from_slice(&payload[8..]);
            write_frame(&mut stream, tag, &bad).expect("reply");
            // Hold the connection open until the client shuts it down.
            let _ = read_frame(&mut stream, 1 << 20);
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        let err = mux
            .submit(5, request_bytes(3, 5, b"x"))
            .wait()
            .expect_err("unknown id must poison");
        assert_eq!(err.kind, MuxErrorKind::Decode);
        assert!(err.detail.contains("unknown request id"));
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn an_abandoned_reply_is_discarded_quietly() {
        let (addr, server) = frame_server(|mut stream| {
            let (tag, payload) = read_frame(&mut stream, 1 << 20).expect("request");
            write_frame(&mut stream, tag, &payload).expect("late echo");
            while read_frame(&mut stream, 1 << 20).is_ok() {
                // Swallow follow-ups without replying; the test only needs
                // the connection to stay up.
            }
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        // Submit and immediately drop the handle: the echo arrives for an
        // abandoned id and must NOT poison the connection.
        drop(mux.submit(1, request_bytes(3, 1, b"abandoned")));
        std::thread::sleep(Duration::from_millis(200));
        assert!(!mux.is_poisoned(), "abandoned reply must not poison");
        assert_eq!(mux.in_flight(), 0);
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn a_stalled_peer_is_detected_through_the_reply_deadline() {
        let (addr, server) = frame_server(|mut stream| {
            // Read the request, never answer, keep the socket open until
            // the client gives up and shuts it down.
            let _ = read_frame(&mut stream, 1 << 20);
            let _ = read_frame(&mut stream, 1 << 20);
        });
        let options = MuxOptions {
            reply_deadline: Some(Duration::from_millis(100)),
            ..MuxOptions::default()
        };
        let mux = connect_mux(&addr, options);
        let start = Instant::now();
        let err = mux
            .submit(1, request_bytes(3, 1, b"never answered"))
            .wait()
            .expect_err("stall must surface");
        assert_eq!(err.kind, MuxErrorKind::Stalled);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "stall detection took {:?}",
            start.elapsed()
        );
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn a_decode_rejection_poisons_with_the_callback_error() {
        let (addr, server) = frame_server(|mut stream| {
            let _ = read_frame(&mut stream, 1 << 20).expect("request");
            // Reply with a frame too short to carry an id.
            write_frame(&mut stream, 9, b"tiny").expect("reply");
            let _ = read_frame(&mut stream, 1 << 20);
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        let err = mux
            .submit(1, request_bytes(3, 1, b"x"))
            .wait()
            .expect_err("decode rejection");
        assert_eq!(err.kind, MuxErrorKind::Decode);
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn a_late_reply_for_a_reaped_abandoned_id_is_discarded_quietly() {
        // More abandons than the cap, so the first id is reaped from the
        // abandoned set before its late reply arrives.
        const FLOOD: usize = ABANDONED_LIMIT + 8;
        let (addr, server) = frame_server(move |mut stream| {
            // Stash the first request, swallow the abandon flood, then
            // answer the stashed request long after its caller gave up —
            // and was reaped. Echo everything after that.
            let first = read_frame(&mut stream, 1 << 20).expect("first request");
            for _ in 0..FLOOD {
                let _ = read_frame(&mut stream, 1 << 20).expect("flood request");
            }
            write_frame(&mut stream, first.0, &first.1).expect("late echo");
            while let Ok((tag, payload)) = read_frame(&mut stream, 1 << 20) {
                write_frame(&mut stream, tag, &payload).expect("echo");
            }
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        drop(mux.submit(1, request_bytes(3, 1, b"will be reaped")));
        for i in 0..FLOOD as u64 {
            drop(mux.submit(1000 + i, request_bytes(3, 1000 + i, b"flood")));
        }
        // A fresh request still round-trips — the late reply for the
        // reaped id 1 was discarded via the high-water mark instead of
        // poisoning the connection.
        let (_, payload) = mux
            .submit(50_000, request_bytes(3, 50_000, b"fresh"))
            .wait()
            .expect("fresh request after the reaped late reply");
        assert_eq!(&payload[8..], b"fresh");
        assert!(!mux.is_poisoned(), "reaped late reply must not poison");
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn a_reused_id_is_rejected_while_abandoned_and_safe_after_the_drain() {
        let (addr, server) = frame_server(|mut stream| {
            // Swallow the first request (tag 4); echo everything else on
            // command (tag 3).
            while let Ok((tag, payload)) = read_frame(&mut stream, 1 << 20) {
                if tag == 3 {
                    write_frame(&mut stream, tag, &payload).expect("echo");
                }
            }
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        // Abandon id 7 with its reply still outstanding (the server
        // swallows tag 4, so nothing ever drains it).
        drop(mux.submit(7, request_bytes(4, 7, b"abandoned")));
        // Reusing the id now would let the old request's late reply
        // cross-wire into the new caller: typed rejection, no poison.
        let err = mux
            .submit(7, request_bytes(3, 7, b"reused too early"))
            .wait()
            .expect_err("reuse while abandoned must be rejected");
        assert_eq!(err.kind, MuxErrorKind::Decode);
        assert!(err.detail.contains("already in flight"));
        assert!(!mux.is_poisoned(), "a rejected reuse must not poison");
        // A duplicate of a *pending* id is rejected the same way.
        let pending = mux.submit(9, request_bytes(4, 9, b"still in flight"));
        let err = mux
            .submit(9, request_bytes(3, 9, b"duplicate"))
            .wait()
            .expect_err("duplicate of a pending id must be rejected");
        assert_eq!(err.kind, MuxErrorKind::Decode);
        drop(pending);
        // Other ids are unaffected throughout.
        let (_, payload) = mux
            .submit(8, request_bytes(3, 8, b"unaffected"))
            .wait()
            .expect("fresh id still round-trips");
        assert_eq!(&payload[8..], b"unaffected");
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn a_drained_duplicate_reply_does_not_corrupt_a_later_reused_id() {
        // The hedge-loser shape: a request is abandoned, its late reply
        // drains, and the id is then reused for a fresh request. The fresh
        // caller must get *its own* reply, never the stale one.
        let (addr, server) = frame_server(|mut stream| {
            while let Ok((tag, payload)) = read_frame(&mut stream, 1 << 20) {
                if tag == 3 {
                    write_frame(&mut stream, tag, &payload).expect("echo");
                }
            }
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        // Abandon id 5; the echo arrives afterwards and is drained.
        drop(mux.submit(5, request_bytes(3, 5, b"stale loser reply")));
        let deadline = Instant::now() + Duration::from_secs(10);
        while mux.shared.lock().abandoned.contains(&5) {
            assert!(Instant::now() < deadline, "late reply never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!mux.is_poisoned(), "drained duplicate must not poison");
        // Reuse the id: the new request correlates to the new reply.
        let (_, payload) = mux
            .submit(5, request_bytes(3, 5, b"fresh winner reply"))
            .wait()
            .expect("reused id after the drain");
        assert_eq!(&payload[8..], b"fresh winner reply");
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn poll_timeout_times_out_then_delivers() {
        let (addr, server) = frame_server(|mut stream| {
            // Answer only the second request ever received; swallow the
            // first (tag 4) to force the poll timeout path.
            while let Ok((tag, payload)) = read_frame(&mut stream, 1 << 20) {
                if tag == 3 {
                    write_frame(&mut stream, tag, &payload).expect("echo");
                }
            }
        });
        let mux = connect_mux(&addr, MuxOptions::default());
        let mut slow = mux.submit(1, request_bytes(4, 1, b"never answered"));
        assert!(
            slow.poll_timeout(Duration::from_millis(50)).is_none(),
            "an unanswered request polls to None"
        );
        let mut fast = mux.submit(2, request_bytes(3, 2, b"hedge"));
        let reply = loop {
            if let Some(reply) = fast.poll_timeout(Duration::from_millis(50)) {
                break reply;
            }
        };
        let (_, payload) = reply.expect("hedged reply");
        assert_eq!(&payload[8..], b"hedge");
        // Dropping the loser abandons it quietly.
        drop(slow);
        assert!(!mux.is_poisoned());
        drop(mux);
        server.join().expect("server thread");
    }

    #[test]
    fn error_display_names_the_kind() {
        let e = MuxError::new(MuxErrorKind::Stalled, "no reply within 30s");
        assert!(e.to_string().contains("stalled"));
        let e = MuxError::new(MuxErrorKind::Remote, "fingerprint mismatch");
        assert!(e.to_string().contains("fingerprint mismatch"));
    }
}
