//! A persistent worker-thread pool for latency-sensitive fan-out.
//!
//! [`par_map`](crate::par::par_map) spawns scoped threads per call, which is
//! the right shape for long batch jobs (the spawn cost amortizes over the
//! batch) but wasteful for *per-query* fan-out: a sharded similarity lookup
//! that takes tens of microseconds should not pay a thread spawn per shard
//! per query. [`WorkerPool`] keeps a fixed set of long-lived workers blocked
//! on a shared channel; submitting a job is one channel send, and
//! [`WorkerPool::run_indexed`] scatter/gathers a small indexed task set with
//! no thread creation at all.
//!
//! Pool workers are marked as parallel workers (see
//! [`in_parallel_worker`](crate::par::in_parallel_worker)), so code that
//! degrades gracefully under nesting — e.g. scoring shards serially when
//! already inside a batch worker — behaves identically on pool threads, and
//! a job can never deadlock the pool by recursively fanning out into it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Bound on the shared job queue. Submitting past this depth blocks the
/// producer until a worker drains a slot, so a stalled pool exerts
/// backpressure instead of growing the heap without limit.
const JOB_QUEUE_DEPTH: usize = 1024;

/// A fixed-size pool of persistent worker threads consuming jobs from a
/// shared queue.
///
/// Jobs are `'static` closures; scatter/gather over borrowed data goes
/// through [`WorkerPool::run_indexed`] with the shared state wrapped in
/// `Arc`s. Dropping the pool closes the queue and joins every worker.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `threads` persistent workers (`0` means "use available
    /// parallelism"). Workers survive job panics: a panicking job is caught
    /// and the worker returns to the queue.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let (sender, receiver) = sync_channel::<Job>(JOB_QUEUE_DEPTH);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&receiver))
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one fire-and-forget job. Any idle worker picks it up. Blocks
    /// when the queue is at its bound (`JOB_QUEUE_DEPTH`, 1024) until a
    /// worker frees a slot.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        // The sender exists from construction until drop, and the workers
        // only stop receiving once it is dropped; if either invariant is
        // mid-teardown the job is dropped rather than panicking the caller.
        let Some(sender) = self.sender.as_ref() else {
            return;
        };
        let _ = sender.send(Box::new(job));
    }

    /// Run `f(0..n)` across the pool and collect the results in index order,
    /// blocking until all `n` results arrived. The scatter is `n` channel
    /// sends; no threads are created.
    ///
    /// Called from a thread that is *itself* a parallel worker (a `par_map`
    /// worker or a pool thread — including this pool's own threads), the
    /// work runs inline on the caller instead: a job blocking on sub-jobs
    /// that need the same workers would deadlock a saturated pool, and a
    /// nested fan-out adds no parallelism anyway.
    ///
    /// Panics if a job panicked (the worker itself survives).
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if n == 0 {
            return Vec::new();
        }
        if crate::par::in_parallel_worker() {
            return (0..n).map(f).collect();
        }
        let f = Arc::new(f);
        // Capacity n: every job sends exactly once, so no sender ever blocks
        // even if the gatherer is slow to drain.
        let (tx, rx) = sync_channel::<(usize, R)>(n);
        for i in 0..n {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.submit(move || {
                // A send failure means the gatherer already gave up
                // (it panicked on an earlier missing result); nothing to do.
                let _ = tx.send((i, f(i)));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut received = 0usize;
        while let Ok((i, value)) = rx.recv() {
            slots[i] = Some(value);
            received += 1;
        }
        assert_eq!(received, n, "a worker pool job panicked");
        // Each job sends its own distinct index exactly once, so n receipts
        // fill every slot; flatten is exact, not lossy.
        let results: Vec<R> = slots.into_iter().flatten().collect();
        debug_assert_eq!(results.len(), n);
        results
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    crate::par::mark_parallel_worker();
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a worker panicked while holding the lock
        };
        match job {
            Ok(job) => {
                // Failpoint: only the Delay action is meaningful here (it
                // stalls this worker before the job runs, simulating a
                // scheduling hiccup); hit() sleeps internally and any other
                // configured fault is deliberately ignored — a pool job has
                // no transport to fail.
                let _ = crate::failpoint::hit("pool.job");
                // Keep the worker alive across job panics; the gather side
                // detects the missing result through the closed channel.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // queue closed: the pool is being dropped
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_indexed_matches_sequential() {
        let pool = WorkerPool::new(4);
        let got = pool.run_indexed(100, |i| i * i);
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, expected);
        // The pool is reusable.
        assert_eq!(pool.run_indexed(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn submit_runs_fire_and_forget_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = sync_channel(10);
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..10 {
            rx.recv().expect("job completed");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn workers_are_marked_as_parallel_workers() {
        let pool = WorkerPool::new(1);
        assert!(!crate::par::in_parallel_worker());
        let flags = pool.run_indexed(2, |_| crate::par::in_parallel_worker());
        assert_eq!(flags, vec![true, true]);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, |i| {
                if i == 2 {
                    panic!("job blew up");
                }
                i
            })
        }));
        assert!(result.is_err(), "the gather must surface the job panic");
        // The workers survived and keep serving.
        assert_eq!(pool.run_indexed(3, |i| i * 10), vec![0, 10, 20]);
    }

    #[test]
    fn nested_run_indexed_falls_back_inline_instead_of_deadlocking() {
        // A single-threaded pool whose only job fans out into the same
        // pool: without the inline fallback this deadlocks forever.
        let pool = Arc::new(WorkerPool::new(1));
        let inner = Arc::clone(&pool);
        let results = pool.run_indexed(1, move |_| inner.run_indexed(3, |i| i * 2));
        assert_eq!(results, vec![vec![0, 2, 4]]);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.run_indexed(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        // mpsc receivers drain buffered messages after the sender closes,
        // so every job submitted before drop runs before the workers exit.
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }
}
