//! Random forest classifier (bagged CART trees).
//!
//! Mirrors the scikit-learn estimator the paper uses: bootstrap-sampled
//! trees with per-split feature subsampling, `class_weight="balanced"`
//! support, probability prediction by averaging tree leaf distributions, and
//! mean-decrease-in-impurity feature importances. Trees are grown in
//! parallel with the workspace's crossbeam-based `par_map`, one RNG stream
//! per tree derived from the forest seed.

use crate::class_weight::balanced_sample_weights;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::{argmax, Criterion, DecisionTree, MaxFeatures, TreeParams};
use hpcutil::{par_map_indexed, ParallelConfig, SeedSequence};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Class weighting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassWeight {
    /// All samples weigh the same.
    Uniform,
    /// Weights inversely proportional to class frequency
    /// (scikit-learn's `class_weight="balanced"`), the setting the paper
    /// uses to handle its imbalanced 92-class dataset.
    Balanced,
}

/// Hyper-parameters of the forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Split criterion shared by all trees.
    pub criterion: Criterion,
    /// Maximum tree depth (`None` = unlimited).
    pub max_depth: Option<usize>,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Whether each tree sees a bootstrap resample of the training set.
    pub bootstrap: bool,
    /// Class weighting strategy.
    pub class_weight: ClassWeight,
    /// Worker threads for tree growing (0 = auto).
    pub n_jobs: usize,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            class_weight: ClassWeight::Balanced,
            n_jobs: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
    importances: Vec<f64>,
}

impl RandomForest {
    /// Fit a forest on `ds` with the given parameters and seed.
    pub fn fit(ds: &Dataset, params: &RandomForestParams, seed: u64) -> Result<Self, MlError> {
        if params.n_estimators == 0 {
            return Err(MlError::InvalidParameter("n_estimators must be >= 1"));
        }
        if ds.n_samples() == 0 {
            return Err(MlError::EmptyDataset);
        }
        let base_weights = match params.class_weight {
            ClassWeight::Uniform => vec![1.0; ds.n_samples()],
            ClassWeight::Balanced => balanced_sample_weights(ds.labels(), ds.n_classes()),
        };
        let tree_params = TreeParams {
            criterion: params.criterion,
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            min_samples_leaf: params.min_samples_leaf,
            max_features: params.max_features,
        };
        let seeds = SeedSequence::new(seed);
        let n = ds.n_samples();

        let results: Vec<Result<DecisionTree, MlError>> = par_map_indexed(
            params.n_estimators,
            ParallelConfig { threads: params.n_jobs, chunk: 1 },
            |t| {
                let tree_seed = seeds.derive_indexed("tree", t as u64);
                if params.bootstrap {
                    let mut rng = ChaCha8Rng::seed_from_u64(seeds.derive_indexed("bootstrap", t as u64));
                    // Bootstrap: sample n indices with replacement, then fold
                    // the resample multiplicity into the sample weights so the
                    // tree trains on the original matrix without copying rows.
                    let mut multiplicity = vec![0.0f64; n];
                    for _ in 0..n {
                        multiplicity[rng.gen_range(0..n)] += 1.0;
                    }
                    let weights: Vec<f64> = multiplicity
                        .iter()
                        .zip(&base_weights)
                        .map(|(m, w)| m * w)
                        .collect();
                    DecisionTree::fit_weighted(ds, &weights, &tree_params, tree_seed)
                } else {
                    DecisionTree::fit_weighted(ds, &base_weights, &tree_params, tree_seed)
                }
            },
        );

        let mut trees = Vec::with_capacity(params.n_estimators);
        for r in results {
            trees.push(r?);
        }

        // Aggregate and normalize feature importances.
        let mut importances = vec![0.0; ds.n_features()];
        for tree in &trees {
            for (acc, &imp) in importances.iter_mut().zip(tree.raw_importances()) {
                *acc += imp;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for imp in &mut importances {
                *imp /= total;
            }
        }

        Ok(Self { trees, n_classes: ds.n_classes(), n_features: ds.n_features(), importances })
    }

    /// Average class-probability estimate for one sample.
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba(sample);
            for (a, v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Predicted class index for one sample.
    pub fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.predict_proba(sample))
    }

    /// Predict every row of a feature matrix (in parallel).
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        par_map_indexed(rows.len(), ParallelConfig::default(), |i| self.predict(&rows[i]))
    }

    /// Probability predictions for every row of a feature matrix.
    pub fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        par_map_indexed(rows.len(), ParallelConfig::default(), |i| self.predict_proba(&rows[i]))
    }

    /// Normalized mean-decrease-in-impurity feature importances
    /// (sums to 1 unless no split was ever made).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features expected per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize, n_classes: usize) -> Dataset {
        // Deterministic "blob" data: class c centred at (3c, -3c).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for i in 0..n_per_class {
                let jx = ((i * 7 + c * 13) % 10) as f64 * 0.05;
                let jy = ((i * 11 + c * 5) % 10) as f64 * 0.05;
                rows.push(vec![3.0 * c as f64 + jx, -3.0 * c as f64 + jy, (i % 3) as f64]);
                labels.push(c);
            }
        }
        let names = (0..n_classes).map(|c| format!("class{c}")).collect();
        Dataset::from_rows(rows, labels, vec![], names).unwrap()
    }

    #[test]
    fn classifies_blobs() {
        let ds = blobs(20, 4);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams { n_estimators: 30, ..Default::default() },
            11,
        )
        .unwrap();
        let mut correct = 0;
        for i in 0..ds.n_samples() {
            if forest.predict(ds.features().row(i)) == ds.labels()[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / ds.n_samples() as f64 > 0.95);
    }

    #[test]
    fn proba_is_normalized() {
        let ds = blobs(10, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams { n_estimators: 15, ..Default::default() },
            1,
        )
        .unwrap();
        let p = forest.predict_proba(&[3.0, -3.0, 1.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&p), 1);
    }

    #[test]
    fn importances_sum_to_one() {
        let ds = blobs(15, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams { n_estimators: 20, ..Default::default() },
            3,
        )
        .unwrap();
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The third feature is noise; the informative coordinates dominate.
        assert!(imp[2] < imp[0] + imp[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blobs(12, 3);
        let params = RandomForestParams { n_estimators: 10, ..Default::default() };
        let a = RandomForest::fit(&ds, &params, 99).unwrap();
        let b = RandomForest::fit(&ds, &params, 99).unwrap();
        for i in 0..ds.n_samples() {
            assert_eq!(
                a.predict_proba(ds.features().row(i)),
                b.predict_proba(ds.features().row(i))
            );
        }
        assert_eq!(a.feature_importances(), b.feature_importances());
    }

    #[test]
    fn different_seeds_differ() {
        let ds = blobs(12, 3);
        let params = RandomForestParams { n_estimators: 10, ..Default::default() };
        let a = RandomForest::fit(&ds, &params, 1).unwrap();
        let b = RandomForest::fit(&ds, &params, 2).unwrap();
        // Probabilities on at least one sample should differ between seeds.
        let differs = (0..ds.n_samples()).any(|i| {
            a.predict_proba(ds.features().row(i)) != b.predict_proba(ds.features().row(i))
        });
        assert!(differs);
    }

    #[test]
    fn zero_estimators_rejected() {
        let ds = blobs(5, 2);
        assert!(matches!(
            RandomForest::fit(&ds, &RandomForestParams { n_estimators: 0, ..Default::default() }, 0),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn no_bootstrap_also_works() {
        let ds = blobs(10, 2);
        let params = RandomForestParams {
            n_estimators: 5,
            bootstrap: false,
            class_weight: ClassWeight::Uniform,
            ..Default::default()
        };
        let forest = RandomForest::fit(&ds, &params, 5).unwrap();
        assert_eq!(forest.n_trees(), 5);
        assert_eq!(forest.predict(&[0.0, 0.0, 0.0]), 0);
    }

    #[test]
    fn balanced_weights_help_minority_class() {
        // 95 samples of class 0 vs 5 of class 1, overlapping features; the
        // balanced forest must still be able to predict class 1 in its
        // region.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..95 {
            rows.push(vec![(i % 10) as f64 * 0.1]);
            labels.push(0);
        }
        for i in 0..5 {
            rows.push(vec![2.0 + (i % 3) as f64 * 0.1]);
            labels.push(1);
        }
        let ds = Dataset::from_rows(rows, labels, vec![], vec!["a".into(), "b".into()]).unwrap();
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams { n_estimators: 25, ..Default::default() },
            7,
        )
        .unwrap();
        assert_eq!(forest.predict(&[2.1]), 1);
        assert_eq!(forest.predict(&[0.3]), 0);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let ds = blobs(8, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams { n_estimators: 12, ..Default::default() },
            2,
        )
        .unwrap();
        let rows: Vec<Vec<f64>> = ds.features().rows().map(|r| r.to_vec()).collect();
        let batch = forest.predict_batch(&rows);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch[i], forest.predict(row));
        }
        let probas = forest.predict_proba_batch(&rows);
        assert_eq!(probas.len(), rows.len());
    }
}
