//! Random forest classifier (bagged CART trees).
//!
//! Mirrors the scikit-learn estimator the paper uses: bootstrap-sampled
//! trees with per-split feature subsampling, `class_weight="balanced"`
//! support, probability prediction by averaging tree leaf distributions, and
//! mean-decrease-in-impurity feature importances. Trees are grown in
//! parallel with the workspace's scoped-thread `par_map`, one RNG stream
//! per tree derived from the forest seed.

use crate::class_weight::balanced_sample_weights;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Model;
use crate::tree::{argmax, Criterion, DecisionTree, MaxFeatures, TreeParams};
use hpcutil::{par_map_indexed, ByteReader, ByteWriter, CodecError, ParallelConfig, SeedSequence};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Class weighting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassWeight {
    /// All samples weigh the same.
    Uniform,
    /// Weights inversely proportional to class frequency
    /// (scikit-learn's `class_weight="balanced"`), the setting the paper
    /// uses to handle its imbalanced 92-class dataset.
    Balanced,
}

/// Hyper-parameters of the forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Split criterion shared by all trees.
    pub criterion: Criterion,
    /// Maximum tree depth (`None` = unlimited).
    pub max_depth: Option<usize>,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Whether each tree sees a bootstrap resample of the training set.
    pub bootstrap: bool,
    /// Class weighting strategy.
    pub class_weight: ClassWeight,
    /// Worker threads for tree growing (0 = auto).
    pub n_jobs: usize,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            class_weight: ClassWeight::Balanced,
            n_jobs: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
    importances: Vec<f64>,
}

impl RandomForest {
    /// Fit a forest on `ds` with the given parameters and seed.
    pub fn fit(ds: &Dataset, params: &RandomForestParams, seed: u64) -> Result<Self, MlError> {
        if params.n_estimators == 0 {
            return Err(MlError::InvalidParameter("n_estimators must be >= 1"));
        }
        if ds.n_samples() == 0 {
            return Err(MlError::EmptyDataset);
        }
        let base_weights = match params.class_weight {
            ClassWeight::Uniform => vec![1.0; ds.n_samples()],
            ClassWeight::Balanced => balanced_sample_weights(ds.labels(), ds.n_classes()),
        };
        let tree_params = TreeParams {
            criterion: params.criterion,
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            min_samples_leaf: params.min_samples_leaf,
            max_features: params.max_features,
        };
        let seeds = SeedSequence::new(seed);
        let n = ds.n_samples();

        let results: Vec<Result<DecisionTree, MlError>> = par_map_indexed(
            params.n_estimators,
            ParallelConfig {
                threads: params.n_jobs,
                chunk: 1,
            },
            |t| {
                let tree_seed = seeds.derive_indexed("tree", t as u64);
                if params.bootstrap {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(seeds.derive_indexed("bootstrap", t as u64));
                    // Bootstrap: sample n indices with replacement, then fold
                    // the resample multiplicity into the sample weights so the
                    // tree trains on the original matrix without copying rows.
                    let mut multiplicity = vec![0.0f64; n];
                    for _ in 0..n {
                        multiplicity[rng.gen_range(0..n)] += 1.0;
                    }
                    let weights: Vec<f64> = multiplicity
                        .iter()
                        .zip(&base_weights)
                        .map(|(m, w)| m * w)
                        .collect();
                    DecisionTree::fit_weighted(ds, &weights, &tree_params, tree_seed)
                } else {
                    DecisionTree::fit_weighted(ds, &base_weights, &tree_params, tree_seed)
                }
            },
        );

        let mut trees = Vec::with_capacity(params.n_estimators);
        for r in results {
            trees.push(r?);
        }

        // Aggregate and normalize feature importances.
        let mut importances = vec![0.0; ds.n_features()];
        for tree in &trees {
            for (acc, &imp) in importances.iter_mut().zip(tree.raw_importances()) {
                *acc += imp;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for imp in &mut importances {
                *imp /= total;
            }
        }

        Ok(Self {
            trees,
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
            importances,
        })
    }

    /// Average class-probability estimate for one sample.
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba(sample);
            for (a, v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Predicted class index for one sample.
    pub fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.predict_proba(sample))
    }

    // Batch prediction lives on the `Model` trait (`predict_batch`,
    // `predict_proba_batch`), shared with every other model.

    /// Normalized mean-decrease-in-impurity feature importances
    /// (sums to 1 unless no split was ever made).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features expected per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Append this forest's binary encoding to `w` (the trained-classifier
    /// artifact format; see `hpcutil::codec`).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.n_classes);
        w.put_usize(self.n_features);
        w.put_usize(self.importances.len());
        for &imp in &self.importances {
            w.put_f64(imp);
        }
        w.put_usize(self.trees.len());
        for tree in &self.trees {
            tree.encode(w);
        }
    }

    /// Decode a forest previously written with [`RandomForest::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n_classes = r.get_usize()?;
        let n_features = r.get_usize()?;
        let n_importances = r.get_usize()?;
        if n_importances != n_features {
            return Err(CodecError::new(format!(
                "forest importances length {n_importances} != n_features {n_features}"
            )));
        }
        let mut importances = Vec::with_capacity(n_importances);
        for _ in 0..n_importances {
            importances.push(r.get_f64()?);
        }
        let n_trees = r.get_usize()?;
        if n_trees == 0 {
            return Err(CodecError::new("forest has no trees"));
        }
        let mut trees = Vec::with_capacity(n_trees);
        for i in 0..n_trees {
            let tree = DecisionTree::decode(r)?;
            if tree.n_classes() != n_classes {
                return Err(CodecError::new(format!(
                    "tree {i} has {} classes, forest expects {n_classes}",
                    tree.n_classes()
                )));
            }
            if tree.n_features() != n_features {
                return Err(CodecError::new(format!(
                    "tree {i} expects {} features, forest expects {n_features}",
                    tree.n_features()
                )));
            }
            trees.push(tree);
        }
        Ok(Self {
            trees,
            n_classes,
            n_features,
            importances,
        })
    }
}

impl Model for RandomForest {
    type Params = RandomForestParams;

    fn fit(ds: &Dataset, params: &RandomForestParams, seed: u64) -> Result<Self, MlError> {
        RandomForest::fit(ds, params, seed)
    }

    fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        RandomForest::predict_proba(self, sample)
    }

    fn n_classes(&self) -> usize {
        RandomForest::n_classes(self)
    }
}

impl RandomForestParams {
    /// Append the binary encoding of these parameters to `w`.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.n_estimators);
        w.put_u8(match self.criterion {
            Criterion::Gini => 0,
            Criterion::Entropy => 1,
        });
        match self.max_depth {
            None => w.put_u8(0),
            Some(d) => {
                w.put_u8(1);
                w.put_usize(d);
            }
        }
        w.put_usize(self.min_samples_split);
        w.put_usize(self.min_samples_leaf);
        match self.max_features {
            MaxFeatures::All => w.put_u8(0),
            MaxFeatures::Sqrt => w.put_u8(1),
            MaxFeatures::Log2 => w.put_u8(2),
            MaxFeatures::Count(c) => {
                w.put_u8(3);
                w.put_usize(c);
            }
        }
        w.put_bool(self.bootstrap);
        w.put_u8(match self.class_weight {
            ClassWeight::Uniform => 0,
            ClassWeight::Balanced => 1,
        });
        w.put_usize(self.n_jobs);
    }

    /// Decode parameters previously written with
    /// [`RandomForestParams::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n_estimators = r.get_usize()?;
        let criterion = match r.get_u8()? {
            0 => Criterion::Gini,
            1 => Criterion::Entropy,
            tag => return Err(CodecError::new(format!("unknown criterion tag {tag}"))),
        };
        let max_depth = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_usize()?),
            tag => return Err(CodecError::new(format!("unknown max_depth tag {tag}"))),
        };
        let min_samples_split = r.get_usize()?;
        let min_samples_leaf = r.get_usize()?;
        let max_features = match r.get_u8()? {
            0 => MaxFeatures::All,
            1 => MaxFeatures::Sqrt,
            2 => MaxFeatures::Log2,
            3 => MaxFeatures::Count(r.get_usize()?),
            tag => return Err(CodecError::new(format!("unknown max_features tag {tag}"))),
        };
        let bootstrap = r.get_bool()?;
        let class_weight = match r.get_u8()? {
            0 => ClassWeight::Uniform,
            1 => ClassWeight::Balanced,
            tag => return Err(CodecError::new(format!("unknown class_weight tag {tag}"))),
        };
        let n_jobs = r.get_usize()?;
        Ok(Self {
            n_estimators,
            criterion,
            max_depth,
            min_samples_split,
            min_samples_leaf,
            max_features,
            bootstrap,
            class_weight,
            n_jobs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize, n_classes: usize) -> Dataset {
        // Deterministic "blob" data: class c centred at (3c, -3c).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for i in 0..n_per_class {
                let jx = ((i * 7 + c * 13) % 10) as f64 * 0.05;
                let jy = ((i * 11 + c * 5) % 10) as f64 * 0.05;
                rows.push(vec![
                    3.0 * c as f64 + jx,
                    -3.0 * c as f64 + jy,
                    (i % 3) as f64,
                ]);
                labels.push(c);
            }
        }
        let names = (0..n_classes).map(|c| format!("class{c}")).collect();
        Dataset::from_rows(rows, labels, vec![], names).unwrap()
    }

    #[test]
    fn classifies_blobs() {
        let ds = blobs(20, 4);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 30,
                ..Default::default()
            },
            11,
        )
        .unwrap();
        let mut correct = 0;
        for i in 0..ds.n_samples() {
            if forest.predict(ds.features().row(i)) == ds.labels()[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / ds.n_samples() as f64 > 0.95);
    }

    #[test]
    fn proba_is_normalized() {
        let ds = blobs(10, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 15,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let p = forest.predict_proba(&[3.0, -3.0, 1.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(argmax(&p), 1);
    }

    #[test]
    fn importances_sum_to_one() {
        let ds = blobs(15, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 20,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The third feature is noise; the informative coordinates dominate.
        assert!(imp[2] < imp[0] + imp[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blobs(12, 3);
        let params = RandomForestParams {
            n_estimators: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&ds, &params, 99).unwrap();
        let b = RandomForest::fit(&ds, &params, 99).unwrap();
        for i in 0..ds.n_samples() {
            assert_eq!(
                a.predict_proba(ds.features().row(i)),
                b.predict_proba(ds.features().row(i))
            );
        }
        assert_eq!(a.feature_importances(), b.feature_importances());
    }

    #[test]
    fn different_seeds_differ() {
        let ds = blobs(12, 3);
        let params = RandomForestParams {
            n_estimators: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&ds, &params, 1).unwrap();
        let b = RandomForest::fit(&ds, &params, 2).unwrap();
        // Probabilities on at least one sample should differ between seeds.
        let differs = (0..ds.n_samples()).any(|i| {
            a.predict_proba(ds.features().row(i)) != b.predict_proba(ds.features().row(i))
        });
        assert!(differs);
    }

    #[test]
    fn zero_estimators_rejected() {
        let ds = blobs(5, 2);
        assert!(matches!(
            RandomForest::fit(
                &ds,
                &RandomForestParams {
                    n_estimators: 0,
                    ..Default::default()
                },
                0
            ),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn no_bootstrap_also_works() {
        let ds = blobs(10, 2);
        let params = RandomForestParams {
            n_estimators: 5,
            bootstrap: false,
            class_weight: ClassWeight::Uniform,
            ..Default::default()
        };
        let forest = RandomForest::fit(&ds, &params, 5).unwrap();
        assert_eq!(forest.n_trees(), 5);
        assert_eq!(forest.predict(&[0.0, 0.0, 0.0]), 0);
    }

    #[test]
    fn balanced_weights_help_minority_class() {
        // 95 samples of class 0 vs 5 of class 1, overlapping features; the
        // balanced forest must still be able to predict class 1 in its
        // region.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..95 {
            rows.push(vec![(i % 10) as f64 * 0.1]);
            labels.push(0);
        }
        for i in 0..5 {
            rows.push(vec![2.0 + (i % 3) as f64 * 0.1]);
            labels.push(1);
        }
        let ds = Dataset::from_rows(rows, labels, vec![], vec!["a".into(), "b".into()]).unwrap();
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 25,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        assert_eq!(forest.predict(&[2.1]), 1);
        assert_eq!(forest.predict(&[0.3]), 0);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_predictions() {
        let ds = blobs(10, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 12,
                ..Default::default()
            },
            17,
        )
        .unwrap();
        let mut w = ByteWriter::new();
        forest.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = RandomForest::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(decoded.n_trees(), forest.n_trees());
        assert_eq!(decoded.n_classes(), forest.n_classes());
        assert_eq!(decoded.feature_importances(), forest.feature_importances());
        for i in 0..ds.n_samples() {
            assert_eq!(
                decoded.predict_proba(ds.features().row(i)),
                forest.predict_proba(ds.features().row(i))
            );
        }
    }

    #[test]
    fn decode_rejects_tree_with_mismatched_feature_count() {
        // A forest header declaring 1 feature followed by a tree trained on
        // 3 features: structurally valid bytes, but predicting through it
        // would index past the end of a sample row — decode must refuse.
        let ds = blobs(6, 2); // 3-feature dataset
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), 1).unwrap();
        let mut w = ByteWriter::new();
        w.put_usize(2); // n_classes
        w.put_usize(1); // n_features (lies: the tree has 3)
        w.put_usize(1); // importances length
        w.put_f64(1.0);
        w.put_usize(1); // n_trees
        tree.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = RandomForest::decode(&mut r).unwrap_err();
        assert!(
            err.to_string().contains("features"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncated_forest_bytes_rejected() {
        let ds = blobs(6, 2);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 3,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let mut w = ByteWriter::new();
        forest.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 8, 24, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                RandomForest::decode(&mut r).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn params_roundtrip_through_codec() {
        let params = RandomForestParams {
            n_estimators: 42,
            criterion: Criterion::Entropy,
            max_depth: Some(13),
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: MaxFeatures::Count(5),
            bootstrap: false,
            class_weight: ClassWeight::Uniform,
            n_jobs: 3,
        };
        let mut w = ByteWriter::new();
        params.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(RandomForestParams::decode(&mut r).unwrap(), params);
        assert!(r.is_empty());

        let mut w = ByteWriter::new();
        RandomForestParams::default().encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            RandomForestParams::decode(&mut r).unwrap(),
            RandomForestParams::default()
        );
    }

    #[test]
    fn batch_prediction_matches_single() {
        let ds = blobs(8, 3);
        let forest = RandomForest::fit(
            &ds,
            &RandomForestParams {
                n_estimators: 12,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        let rows: Vec<Vec<f64>> = ds.features().rows().map(|r| r.to_vec()).collect();
        let batch = forest.predict_batch(&rows);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch[i], forest.predict(row));
        }
        let probas = forest.predict_proba_batch(&rows);
        assert_eq!(probas.len(), rows.len());
    }
}
