//! Train/test splitting utilities.
//!
//! The paper's two-phase split needs two primitives:
//!
//! 1. [`split_groups`] — an 80/20 split of the *class labels themselves*
//!    into "known" and "unknown" classes (phase one).
//! 2. [`stratified_split`] — a stratified 60/40 split of the samples of the
//!    known classes (phase two), preserving per-class proportions.
//!
//! Both are deterministic given a seed.

use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Result of a sample-level split: indices into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Indices of the training samples.
    pub train: Vec<usize>,
    /// Indices of the test samples.
    pub test: Vec<usize>,
}

/// Split the values `0..n_groups` (e.g. class ids) into two disjoint sets,
/// with `test_fraction` of them in the second set. At least one group lands
/// on each side whenever `n_groups >= 2`.
pub fn split_groups(n_groups: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut groups: Vec<usize> = (0..n_groups).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    groups.shuffle(&mut rng);
    let mut n_test = (n_groups as f64 * test_fraction).round() as usize;
    if n_groups >= 2 {
        n_test = n_test.clamp(1, n_groups - 1);
    } else {
        n_test = n_test.min(n_groups);
    }
    let test = groups[..n_test].to_vec();
    let train = groups[n_test..].to_vec();
    (train, test)
}

/// Stratified train/test split of sample indices.
///
/// Each class contributes `test_fraction` of its samples (rounded) to the
/// test set; classes with a single sample keep it in the training set so the
/// model has at least one example of every known class (mirroring the way
/// the paper keeps singleton application classes recognizable).
pub fn stratified_split(
    labels: &[usize],
    test_fraction: f64,
    seed: u64,
) -> Result<SplitIndices, MlError> {
    if labels.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(MlError::InvalidSplit(format!(
            "test_fraction {test_fraction} must be in [0, 1)"
        )));
    }
    // Group indices by class, in deterministic class order.
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &label) in labels.iter().enumerate() {
        by_class.entry(label).or_default().push(i);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (_, mut indices) in by_class {
        indices.shuffle(&mut rng);
        let n = indices.len();
        let mut n_test = (n as f64 * test_fraction).round() as usize;
        if n <= 1 {
            n_test = 0;
        } else {
            n_test = n_test.min(n - 1);
        }
        test.extend_from_slice(&indices[..n_test]);
        train.extend_from_slice(&indices[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Ok(SplitIndices { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_split_is_disjoint_and_complete() {
        let (train, test) = split_groups(92, 0.2, 42);
        assert_eq!(train.len() + test.len(), 92);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..92).collect::<Vec<_>>());
        // ~20% of 92 classes
        assert!(
            (15..=22).contains(&test.len()),
            "test classes: {}",
            test.len()
        );
    }

    #[test]
    fn group_split_deterministic() {
        assert_eq!(split_groups(50, 0.2, 7), split_groups(50, 0.2, 7));
        assert_ne!(split_groups(50, 0.2, 7).1, split_groups(50, 0.2, 8).1);
    }

    #[test]
    fn group_split_always_keeps_one_on_each_side() {
        let (train, test) = split_groups(2, 0.9, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = split_groups(5, 0.0, 0);
        assert_eq!(test.len(), 1);
        assert_eq!(train.len(), 4);
    }

    #[test]
    fn stratified_split_preserves_proportions() {
        // 100 of class 0, 10 of class 1.
        let mut labels = vec![0usize; 100];
        labels.extend(vec![1usize; 10]);
        let split = stratified_split(&labels, 0.4, 3).unwrap();
        let test_class0 = split.test.iter().filter(|&&i| labels[i] == 0).count();
        let test_class1 = split.test.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(test_class0, 40);
        assert_eq!(test_class1, 4);
        assert_eq!(split.train.len() + split.test.len(), 110);
    }

    #[test]
    fn singleton_class_stays_in_training() {
        let labels = vec![0, 0, 0, 0, 1];
        let split = stratified_split(&labels, 0.5, 1).unwrap();
        assert!(split.train.contains(&4));
        assert!(!split.test.contains(&4));
    }

    #[test]
    fn split_is_disjoint() {
        let labels: Vec<usize> = (0..200).map(|i| i % 7).collect();
        let split = stratified_split(&labels, 0.4, 9).unwrap();
        for i in &split.train {
            assert!(!split.test.contains(i));
        }
    }

    #[test]
    fn invalid_fraction_rejected() {
        assert!(stratified_split(&[0, 1], 1.0, 0).is_err());
        assert!(stratified_split(&[0, 1], -0.1, 0).is_err());
    }

    #[test]
    fn empty_labels_rejected() {
        assert!(matches!(
            stratified_split(&[], 0.4, 0),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let labels: Vec<usize> = (0..300).map(|i| i % 11).collect();
        assert_eq!(
            stratified_split(&labels, 0.4, 5).unwrap(),
            stratified_split(&labels, 0.4, 5).unwrap()
        );
    }
}
