//! Exhaustive hyper-parameter search over [`Model`] configurations.
//!
//! The paper tunes "n_estimators, criterion, max_depth, min_samples_split,
//! min_samples_leaf, and max_features" with a grid search evaluated only
//! within the training set. [`evaluate_candidates`] scores any list of
//! candidate parameters for any [`Model`] with stratified k-fold
//! cross-validated macro F1 (the metric the paper emphasizes) on folds
//! shared across candidates; [`GridSearch`] is the random-forest front end
//! that expands a [`ParamGrid`] and reports the best configuration.

use crate::crossval::{cross_validate_folds, stratified_k_fold};
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::forest::{RandomForest, RandomForestParams};
use crate::metrics::Average;
use crate::model::Model;
use crate::tree::{Criterion, MaxFeatures};
use hpcutil::SeedSequence;

/// The grid of candidate values. Every combination (Cartesian product) is
/// evaluated. Empty dimensions fall back to the default parameter value.
#[derive(Debug, Clone)]
pub struct ParamGrid {
    /// Candidate tree counts.
    pub n_estimators: Vec<usize>,
    /// Candidate split criteria.
    pub criterion: Vec<Criterion>,
    /// Candidate depth limits.
    pub max_depth: Vec<Option<usize>>,
    /// Candidate `min_samples_split` values.
    pub min_samples_split: Vec<usize>,
    /// Candidate `min_samples_leaf` values.
    pub min_samples_leaf: Vec<usize>,
    /// Candidate `max_features` settings.
    pub max_features: Vec<MaxFeatures>,
}

impl Default for ParamGrid {
    fn default() -> Self {
        Self {
            n_estimators: vec![100],
            criterion: vec![Criterion::Gini],
            max_depth: vec![None],
            min_samples_split: vec![2],
            min_samples_leaf: vec![1],
            max_features: vec![MaxFeatures::Sqrt],
        }
    }
}

impl ParamGrid {
    /// Materialize every parameter combination.
    pub fn combinations(&self, base: &RandomForestParams) -> Vec<RandomForestParams> {
        let ne = if self.n_estimators.is_empty() {
            vec![base.n_estimators]
        } else {
            self.n_estimators.clone()
        };
        let cr = if self.criterion.is_empty() {
            vec![base.criterion]
        } else {
            self.criterion.clone()
        };
        let md = if self.max_depth.is_empty() {
            vec![base.max_depth]
        } else {
            self.max_depth.clone()
        };
        let mss = if self.min_samples_split.is_empty() {
            vec![base.min_samples_split]
        } else {
            self.min_samples_split.clone()
        };
        let msl = if self.min_samples_leaf.is_empty() {
            vec![base.min_samples_leaf]
        } else {
            self.min_samples_leaf.clone()
        };
        let mf = if self.max_features.is_empty() {
            vec![base.max_features]
        } else {
            self.max_features.clone()
        };

        let mut out = Vec::new();
        for &n_estimators in &ne {
            for &criterion in &cr {
                for &max_depth in &md {
                    for &min_samples_split in &mss {
                        for &min_samples_leaf in &msl {
                            for &max_features in &mf {
                                out.push(RandomForestParams {
                                    n_estimators,
                                    criterion,
                                    max_depth,
                                    min_samples_split,
                                    min_samples_leaf,
                                    max_features,
                                    ..base.clone()
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The outcome of evaluating one candidate parameter set.
#[derive(Debug, Clone)]
pub struct CandidateResult<P> {
    /// The parameters evaluated.
    pub params: P,
    /// Mean cross-validated macro F1.
    pub mean_macro_f1: f64,
    /// Per-fold macro F1 scores.
    pub fold_scores: Vec<f64>,
}

/// The outcome of evaluating one random-forest grid point.
pub type GridPointResult = CandidateResult<RandomForestParams>;

/// Cross-validate every candidate parameter set of a model on shared
/// stratified folds and return the results sorted best-first.
///
/// This is the polymorphic core of the grid search: the folds are computed
/// once from `seed` (so all candidates compete on identical splits), each
/// candidate's model randomness derives from its own child seed, and results
/// are ranked by mean macro F1.
pub fn evaluate_candidates<M: Model>(
    ds: &Dataset,
    candidates: Vec<M::Params>,
    n_folds: usize,
    seed: u64,
) -> Result<Vec<CandidateResult<M::Params>>, MlError> {
    let folds = stratified_k_fold(ds.labels(), n_folds, seed)?;
    let seeds = SeedSequence::new(seed);
    let mut results = Vec::with_capacity(candidates.len());
    for (ci, params) in candidates.into_iter().enumerate() {
        let candidate_seeds = SeedSequence::new(seeds.derive_indexed("candidate", ci as u64));
        let fold_scores =
            cross_validate_folds::<M>(ds, &params, &folds, &candidate_seeds, Average::Macro)?;
        let mean = fold_scores.iter().sum::<f64>() / fold_scores.len() as f64;
        results.push(CandidateResult {
            params,
            mean_macro_f1: mean,
            fold_scores,
        });
    }
    results.sort_by(|a, b| {
        b.mean_macro_f1
            .partial_cmp(&a.mean_macro_f1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(results)
}

/// Grid-search driver.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Number of cross-validation folds.
    pub n_folds: usize,
    /// Base parameters for fields not covered by the grid.
    pub base: RandomForestParams,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self {
            n_folds: 3,
            base: RandomForestParams::default(),
        }
    }
}

impl GridSearch {
    /// Evaluate every grid point on `ds` and return all results, best first.
    pub fn run(
        &self,
        ds: &Dataset,
        grid: &ParamGrid,
        seed: u64,
    ) -> Result<Vec<GridPointResult>, MlError> {
        evaluate_candidates::<RandomForest>(ds, grid.combinations(&self.base), self.n_folds, seed)
    }

    /// Convenience: run the search and return only the best parameters.
    pub fn best_params(
        &self,
        ds: &Dataset,
        grid: &ParamGrid,
        seed: u64,
    ) -> Result<RandomForestParams, MlError> {
        let results = self.run(ds, grid, seed)?;
        results
            .into_iter()
            .next()
            .map(|r| r.params)
            .ok_or(MlError::InvalidParameter("empty parameter grid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..15 {
                rows.push(vec![
                    c as f64 * 4.0 + (i % 5) as f64 * 0.1,
                    c as f64 * -4.0 + (i % 7) as f64 * 0.1,
                ]);
                labels.push(c);
            }
        }
        Dataset::from_rows(
            rows,
            labels,
            vec![],
            (0..3).map(|c| format!("c{c}")).collect(),
        )
        .unwrap()
    }

    #[test]
    fn combinations_cover_cartesian_product() {
        let grid = ParamGrid {
            n_estimators: vec![10, 20],
            criterion: vec![Criterion::Gini, Criterion::Entropy],
            max_depth: vec![None, Some(4)],
            min_samples_split: vec![2],
            min_samples_leaf: vec![1, 2],
            max_features: vec![MaxFeatures::Sqrt],
        };
        let combos = grid.combinations(&RandomForestParams::default());
        assert_eq!(combos.len(), ((2 * 2 * 2) * 2));
    }

    #[test]
    fn empty_dimension_uses_base_value() {
        let grid = ParamGrid {
            n_estimators: vec![],
            ..Default::default()
        };
        let base = RandomForestParams {
            n_estimators: 37,
            ..Default::default()
        };
        let combos = grid.combinations(&base);
        assert_eq!(combos.len(), 1);
        assert_eq!(combos[0].n_estimators, 37);
    }

    #[test]
    fn search_finds_a_working_configuration() {
        let ds = blobs();
        let grid = ParamGrid {
            n_estimators: vec![5, 15],
            max_depth: vec![Some(1), None],
            ..Default::default()
        };
        let search = GridSearch {
            n_folds: 3,
            base: RandomForestParams::default(),
        };
        let results = search.run(&ds, &grid, 7).unwrap();
        assert_eq!(results.len(), 4);
        // Results are sorted best-first.
        for w in results.windows(2) {
            assert!(w[0].mean_macro_f1 >= w[1].mean_macro_f1);
        }
        // On cleanly separable blobs the best configuration scores highly.
        assert!(
            results[0].mean_macro_f1 > 0.9,
            "best score: {}",
            results[0].mean_macro_f1
        );
        let best = search.best_params(&ds, &grid, 7).unwrap();
        assert!(grid.combinations(&search.base).contains(&best));
    }

    #[test]
    fn evaluate_candidates_works_for_other_models() {
        use crate::knn::{KNearestNeighbors, KnnParams, Metric};
        let ds = blobs();
        let candidates = vec![
            KnnParams {
                k: 1,
                metric: Metric::Euclidean,
            },
            KnnParams {
                k: 3,
                metric: Metric::Euclidean,
            },
            KnnParams {
                k: 45,
                metric: Metric::Manhattan,
            },
        ];
        let results = evaluate_candidates::<KNearestNeighbors>(&ds, candidates, 3, 5).unwrap();
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].mean_macro_f1 >= w[1].mean_macro_f1);
        }
        // k = 45 on 45 samples votes with the whole training set — it cannot
        // beat a small-k neighbour model on clean blobs.
        assert!(results[0].params.k < 45);
        assert!(results[0].mean_macro_f1 > 0.9);
    }

    #[test]
    fn unlimited_depth_beats_depth_zero_stumps() {
        let ds = blobs();
        let grid = ParamGrid {
            max_depth: vec![Some(0), None],
            ..Default::default()
        };
        let search = GridSearch {
            n_folds: 3,
            base: RandomForestParams {
                n_estimators: 10,
                ..Default::default()
            },
        };
        let best = search.best_params(&ds, &grid, 3).unwrap();
        assert_eq!(best.max_depth, None);
    }
}
