//! A scikit-learn-style classification report.
//!
//! Table 4 of the paper is the verbatim output of scikit-learn's
//! `classification_report`: one row per class with precision, recall, F1 and
//! support, followed by micro / macro / weighted average rows.
//! [`ClassificationReport`] reproduces that structure and renders it as a
//! text table.

use crate::metrics::{per_class_metrics, precision_recall_f1, Average, PrecisionRecallF1};
use hpcutil::table::{Align, TextTable};

/// One row of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Class name (or "-1" for the unknown class, following the paper).
    pub class_name: String,
    /// Metrics for this class.
    pub metrics: PrecisionRecallF1,
}

/// A full classification report.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    rows: Vec<ReportRow>,
    micro: PrecisionRecallF1,
    macro_: PrecisionRecallF1,
    weighted: PrecisionRecallF1,
    total_support: usize,
}

impl ClassificationReport {
    /// Build the report. `class_names[label]` names each label value; classes
    /// absent from `y_true` are omitted from the per-class rows (exactly as
    /// in the paper's Table 4, where unknown-member classes do not appear).
    pub fn compute(y_true: &[usize], y_pred: &[usize], class_names: &[String]) -> Self {
        let n_classes = class_names.len();
        let per_class = per_class_metrics(y_true, y_pred, n_classes);
        let rows: Vec<ReportRow> = per_class
            .iter()
            .enumerate()
            .filter(|(_, m)| m.support > 0)
            .map(|(label, m)| ReportRow {
                class_name: class_names[label].clone(),
                metrics: *m,
            })
            .collect();
        let micro = precision_recall_f1(y_true, y_pred, n_classes, Average::Micro);
        let macro_ = precision_recall_f1(y_true, y_pred, n_classes, Average::Macro);
        let weighted = precision_recall_f1(y_true, y_pred, n_classes, Average::Weighted);
        Self {
            rows,
            micro,
            macro_,
            weighted,
            total_support: y_true.len(),
        }
    }

    /// Per-class rows (classes with non-zero support, in label order).
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Micro-averaged metrics.
    pub fn micro(&self) -> PrecisionRecallF1 {
        self.micro
    }

    /// Macro-averaged metrics.
    pub fn macro_avg(&self) -> PrecisionRecallF1 {
        self.macro_
    }

    /// Support-weighted metrics.
    pub fn weighted_avg(&self) -> PrecisionRecallF1 {
        self.weighted
    }

    /// Total number of evaluated samples.
    pub fn total_support(&self) -> usize {
        self.total_support
    }

    /// Look up a class row by name.
    pub fn row_by_name(&self, name: &str) -> Option<&ReportRow> {
        self.rows.iter().find(|r| r.class_name == name)
    }

    /// Render as a text table shaped like the paper's Table 4.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Class", "Precision", "Recall", "f1-Score", "Support"])
            .with_alignment(vec![
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for row in &self.rows {
            table.add_row(vec![
                row.class_name.clone(),
                format!("{:.2}", row.metrics.precision),
                format!("{:.2}", row.metrics.recall),
                format!("{:.2}", row.metrics.f1),
                row.metrics.support.to_string(),
            ]);
        }
        for (name, m) in [
            ("micro avg", self.micro),
            ("macro avg", self.macro_),
            ("weighted avg", self.weighted),
        ] {
            table.add_row(vec![
                name.to_string(),
                format!("{:.2}", m.precision),
                format!("{:.2}", m.recall),
                format!("{:.2}", m.f1),
                self.total_support.to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["unknown".into(), "Velvet".into(), "FSL".into()]
    }

    #[test]
    fn rows_only_for_present_classes() {
        let y_true = vec![1, 1, 2, 2, 2];
        let y_pred = vec![1, 2, 2, 2, 2];
        let report = ClassificationReport::compute(&y_true, &y_pred, &names());
        assert_eq!(report.rows().len(), 2);
        assert!(report.row_by_name("Velvet").is_some());
        assert!(report.row_by_name("unknown").is_none());
    }

    #[test]
    fn averages_match_metrics_module() {
        let y_true = vec![0, 0, 1, 1, 2];
        let y_pred = vec![0, 1, 1, 1, 0];
        let report = ClassificationReport::compute(&y_true, &y_pred, &names());
        let macro_direct = precision_recall_f1(&y_true, &y_pred, 3, Average::Macro);
        assert!((report.macro_avg().f1 - macro_direct.f1).abs() < 1e-12);
        assert_eq!(report.total_support(), 5);
    }

    #[test]
    fn render_contains_all_sections() {
        let y_true = vec![0, 1, 2, 2];
        let y_pred = vec![0, 1, 2, 1];
        let rendered = ClassificationReport::compute(&y_true, &y_pred, &names()).render();
        assert!(rendered.contains("Class"));
        assert!(rendered.contains("Velvet"));
        assert!(rendered.contains("micro avg"));
        assert!(rendered.contains("macro avg"));
        assert!(rendered.contains("weighted avg"));
    }

    #[test]
    fn perfect_prediction_rows_are_one() {
        let y = vec![1, 1, 2];
        let report = ClassificationReport::compute(&y, &y, &names());
        for row in report.rows() {
            assert!((row.metrics.f1 - 1.0).abs() < 1e-12);
        }
        assert!((report.micro().f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_renders_without_panicking() {
        let report = ClassificationReport::compute(&[], &[], &names());
        assert!(report.rows().is_empty());
        assert_eq!(report.total_support(), 0);
        let rendered = report.render();
        assert!(rendered.contains("macro avg"));
    }
}
