//! CART decision trees with sample weights.
//!
//! This is the base learner of the random forest: a binary tree grown by
//! recursively choosing the `(feature, threshold)` split that maximizes the
//! weighted impurity decrease, with the usual scikit-learn controls
//! (`max_depth`, `min_samples_split`, `min_samples_leaf`, `max_features`,
//! `criterion`). Sample weights are honoured throughout, which is how the
//! forest's balanced class weighting reaches the split search.

use crate::dataset::Dataset;
use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity: `1 - sum_c p_c^2`.
    Gini,
    /// Shannon entropy: `-sum_c p_c log2 p_c`.
    Entropy,
}

/// How many features to consider at each split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// `sqrt(n_features)`, the random-forest default.
    Sqrt,
    /// `log2(n_features)`.
    Log2,
    /// An explicit count (clamped to `1..=n_features`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolve to an actual feature count for `n_features` total features.
    pub fn resolve(self, n_features: usize) -> usize {
        let n = n_features.max(1);
        let k = match self {
            MaxFeatures::All => n,
            MaxFeatures::Sqrt => (n as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (n as f64).log2().ceil() as usize,
            MaxFeatures::Count(c) => c,
        };
        k.clamp(1, n)
    }
}

/// Hyper-parameters for a single tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Split-quality criterion.
    pub criterion: Criterion,
    /// Maximum depth (`None` = unlimited).
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples each child must retain.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split.
    pub max_features: MaxFeatures,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

/// One node of the grown tree, stored in an arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Weighted class distribution, normalized to sum to 1.
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
    /// Un-normalized impurity decrease accumulated per feature.
    importances: Vec<f64>,
}

/// Compute impurity of a weighted class histogram.
fn impurity(hist: &[f64], total: f64, criterion: Criterion) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    match criterion {
        Criterion::Gini => {
            let mut sum_sq = 0.0;
            for &w in hist {
                let p = w / total;
                sum_sq += p * p;
            }
            1.0 - sum_sq
        }
        Criterion::Entropy => {
            let mut h = 0.0;
            for &w in hist {
                if w > 0.0 {
                    let p = w / total;
                    h -= p * p.log2();
                }
            }
            h
        }
    }
}

struct Builder<'a> {
    ds: &'a Dataset,
    weights: &'a [f64],
    params: &'a TreeParams,
    rng: ChaCha8Rng,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    max_features: usize,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl<'a> Builder<'a> {
    /// Weighted class histogram of the given sample indices.
    fn histogram(&self, indices: &[usize]) -> (Vec<f64>, f64) {
        let mut hist = vec![0.0; self.ds.n_classes()];
        let mut total = 0.0;
        for &i in indices {
            let w = self.weights[i];
            hist[self.ds.labels()[i]] += w;
            total += w;
        }
        (hist, total)
    }

    fn make_leaf(&mut self, hist: &[f64], total: f64) -> usize {
        let proba: Vec<f64> = if total > 0.0 {
            hist.iter().map(|&w| w / total).collect()
        } else {
            vec![0.0; hist.len()]
        };
        self.nodes.push(Node::Leaf { proba });
        self.nodes.len() - 1
    }

    /// Find the best split of `indices` over a random subset of features.
    fn best_split(
        &mut self,
        indices: &[usize],
        parent_imp: f64,
        parent_total: f64,
    ) -> Option<BestSplit> {
        let n_features = self.ds.n_features();
        let mut features: Vec<usize> = (0..n_features).collect();
        features.shuffle(&mut self.rng);
        features.truncate(self.max_features);

        let criterion = self.params.criterion;
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<BestSplit> = None;

        // Reusable buffers for the left/right histograms.
        let n_classes = self.ds.n_classes();
        for &feat in &features {
            // Sort the samples of this node by the candidate feature.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                self.ds
                    .features()
                    .get(a, feat)
                    .partial_cmp(&self.ds.features().get(b, feat))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            let mut left_hist = vec![0.0f64; n_classes];
            let mut left_total = 0.0f64;
            let (full_hist, full_total) = self.histogram(indices);

            for pos in 0..order.len().saturating_sub(1) {
                let i = order[pos];
                let w = self.weights[i];
                left_hist[self.ds.labels()[i]] += w;
                left_total += w;

                let v_here = self.ds.features().get(i, feat);
                let v_next = self.ds.features().get(order[pos + 1], feat);
                if v_next <= v_here + f64::EPSILON {
                    continue; // cannot split between equal values
                }
                let n_left = pos + 1;
                let n_right = order.len() - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let right_total = full_total - left_total;
                if left_total <= 0.0 || right_total <= 0.0 {
                    continue;
                }
                let right_hist: Vec<f64> = full_hist
                    .iter()
                    .zip(&left_hist)
                    .map(|(f, l)| f - l)
                    .collect();
                let imp_left = impurity(&left_hist, left_total, criterion);
                let imp_right = impurity(&right_hist, right_total, criterion);
                let weighted_child =
                    (left_total * imp_left + right_total * imp_right) / parent_total;
                let gain = parent_imp - weighted_child;
                if gain > best.as_ref().map(|b| b.gain).unwrap_or(1e-12) {
                    best = Some(BestSplit {
                        feature: feat,
                        threshold: 0.5 * (v_here + v_next),
                        gain,
                    });
                }
            }
        }
        best
    }

    fn grow(&mut self, indices: &[usize], depth: usize) -> usize {
        let (hist, total) = self.histogram(indices);
        let parent_imp = impurity(&hist, total, self.params.criterion);

        let depth_exceeded = self.params.max_depth.map(|d| depth >= d).unwrap_or(false);
        let too_small = indices.len() < self.params.min_samples_split;
        let pure = parent_imp <= 1e-12;
        if depth_exceeded || too_small || pure || total <= 0.0 {
            return self.make_leaf(&hist, total);
        }

        let Some(split) = self.best_split(indices, parent_imp, total) else {
            return self.make_leaf(&hist, total);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.ds.features().get(i, split.feature) <= split.threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return self.make_leaf(&hist, total);
        }

        // Importance: weighted impurity decrease, weighted by the fraction of
        // total training weight reaching this node.
        self.importances[split.feature] += total * split.gain;

        // Reserve this node's slot before recursing so children get later
        // indices.
        self.nodes.push(Node::Leaf { proba: Vec::new() });
        let this = self.nodes.len() - 1;
        let left = self.grow(&left_idx, depth + 1);
        let right = self.grow(&right_idx, depth + 1);
        self.nodes[this] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        this
    }
}

impl DecisionTree {
    /// Fit a tree on `ds` using per-sample `weights`.
    ///
    /// `seed` controls the random feature subsampling at each split.
    pub fn fit_weighted(
        ds: &Dataset,
        weights: &[f64],
        params: &TreeParams,
        seed: u64,
    ) -> Result<Self, MlError> {
        if ds.n_samples() == 0 {
            return Err(MlError::EmptyDataset);
        }
        if weights.len() != ds.n_samples() {
            return Err(MlError::LengthMismatch {
                rows: ds.n_samples(),
                labels: weights.len(),
            });
        }
        if params.min_samples_split < 2 {
            return Err(MlError::InvalidParameter("min_samples_split must be >= 2"));
        }
        if params.min_samples_leaf < 1 {
            return Err(MlError::InvalidParameter("min_samples_leaf must be >= 1"));
        }
        let max_features = params.max_features.resolve(ds.n_features());
        let mut builder = Builder {
            ds,
            weights,
            params,
            rng: ChaCha8Rng::seed_from_u64(seed),
            nodes: Vec::new(),
            importances: vec![0.0; ds.n_features()],
            max_features,
        };
        let all: Vec<usize> = (0..ds.n_samples()).collect();
        let root = builder.grow(&all, 0);
        debug_assert_eq!(root, 0);
        Ok(Self {
            nodes: builder.nodes,
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
            importances: builder.importances,
        })
    }

    /// Fit with uniform sample weights.
    pub fn fit(ds: &Dataset, params: &TreeParams, seed: u64) -> Result<Self, MlError> {
        let w = vec![1.0; ds.n_samples()];
        Self::fit_weighted(ds, &w, params, seed)
    }

    /// Class-probability estimate for one sample.
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        debug_assert_eq!(sample.len(), self.n_features);
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { proba } => return proba.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted class index for one sample.
    pub fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.predict_proba(sample))
    }

    /// Number of nodes in the tree (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, 0)
    }

    /// Number of classes the tree was trained with.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features expected per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Un-normalized per-feature importance (total weighted impurity
    /// decrease). The forest normalizes the aggregate.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Append this tree's binary encoding to `w` (the trained-classifier
    /// artifact format; see `hpcutil::codec`).
    pub fn encode(&self, w: &mut hpcutil::ByteWriter) {
        w.put_usize(self.n_classes);
        w.put_usize(self.n_features);
        w.put_usize(self.importances.len());
        for &imp in &self.importances {
            w.put_f64(imp);
        }
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { proba } => {
                    w.put_u8(0);
                    w.put_usize(proba.len());
                    for &p in proba {
                        w.put_f64(p);
                    }
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.put_u8(1);
                    w.put_usize(*feature);
                    w.put_f64(*threshold);
                    w.put_usize(*left);
                    w.put_usize(*right);
                }
            }
        }
    }

    /// Decode a tree previously written with [`DecisionTree::encode`],
    /// validating node indices and feature references.
    pub fn decode(r: &mut hpcutil::ByteReader<'_>) -> Result<Self, hpcutil::CodecError> {
        use hpcutil::CodecError;
        let n_classes = r.get_usize()?;
        let n_features = r.get_usize()?;
        let n_importances = r.get_usize()?;
        if n_importances != n_features {
            return Err(CodecError::new(format!(
                "tree importances length {n_importances} != n_features {n_features}"
            )));
        }
        let mut importances = Vec::with_capacity(n_importances);
        for _ in 0..n_importances {
            importances.push(r.get_f64()?);
        }
        let n_nodes = r.get_usize()?;
        if n_nodes == 0 {
            return Err(CodecError::new("tree has no nodes"));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            match r.get_u8()? {
                0 => {
                    let len = r.get_usize()?;
                    if len != n_classes {
                        return Err(CodecError::new(format!(
                            "leaf {i} has {len} probabilities, expected {n_classes}"
                        )));
                    }
                    let mut proba = Vec::with_capacity(len);
                    for _ in 0..len {
                        proba.push(r.get_f64()?);
                    }
                    nodes.push(Node::Leaf { proba });
                }
                1 => {
                    let feature = r.get_usize()?;
                    let threshold = r.get_f64()?;
                    let left = r.get_usize()?;
                    let right = r.get_usize()?;
                    if feature >= n_features {
                        return Err(CodecError::new(format!(
                            "split {i} references feature {feature} of {n_features}"
                        )));
                    }
                    if left >= n_nodes || right >= n_nodes || left <= i || right <= i {
                        return Err(CodecError::new(format!(
                            "split {i} has out-of-order children ({left}, {right}) of {n_nodes}"
                        )));
                    }
                    nodes.push(Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                }
                tag => return Err(CodecError::new(format!("unknown node tag {tag:#04x}"))),
            }
        }
        Ok(Self {
            nodes,
            n_classes,
            n_features,
            importances,
        })
    }
}

/// Index of the maximum value (first one wins ties).
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        // Class 0: feature0 < 1, class 1: feature0 > 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            rows.push(vec![0.1 + 0.02 * i as f64, (i % 5) as f64]);
            labels.push(0);
            rows.push(vec![2.5 + 0.02 * i as f64, (i % 3) as f64]);
            labels.push(1);
        }
        Dataset::from_rows(rows, labels, vec![], vec!["a".into(), "b".into()]).unwrap()
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let ds = separable();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), 1).unwrap();
        for i in 0..ds.n_samples() {
            assert_eq!(tree.predict(ds.features().row(i)), ds.labels()[i]);
        }
        // One split suffices.
        assert!(tree.depth() >= 1);
        assert!(tree.node_count() >= 3);
    }

    #[test]
    fn proba_sums_to_one() {
        let ds = separable();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), 3).unwrap();
        let p = tree.predict_proba(&[1.5, 2.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let ds = separable();
        let params = TreeParams {
            max_depth: Some(0),
            ..Default::default()
        };
        let tree = DecisionTree::fit(&ds, &params, 1).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        // The prior is uniform (balanced data), so proba is 0.5/0.5.
        let p = tree.predict_proba(&[0.0, 0.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = separable();
        let params = TreeParams {
            min_samples_leaf: 25,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&ds, &params, 1).unwrap();
        // With 60 samples and min leaf 25 the tree can split at most once.
        assert!(tree.depth() <= 1 + 1);
    }

    #[test]
    fn importances_concentrate_on_informative_feature() {
        let ds = separable();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), 5).unwrap();
        let imp = tree.raw_importances();
        assert!(imp[0] > imp[1], "feature 0 separates the classes: {imp:?}");
    }

    #[test]
    fn sample_weights_shift_the_prior() {
        // All samples identical features, two classes; weights decide the
        // leaf distribution.
        let ds = Dataset::from_rows(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            vec![0, 0, 0, 1],
            vec![],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        let weights = vec![1.0, 1.0, 1.0, 9.0];
        let tree = DecisionTree::fit_weighted(&ds, &weights, &TreeParams::default(), 0).unwrap();
        let p = tree.predict_proba(&[1.0]);
        assert!(
            p[1] > p[0],
            "heavily weighted minority sample should dominate: {p:?}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let ds = separable();
        assert!(matches!(
            DecisionTree::fit(
                &ds,
                &TreeParams {
                    min_samples_split: 1,
                    ..Default::default()
                },
                0
            ),
            Err(MlError::InvalidParameter(_))
        ));
        assert!(matches!(
            DecisionTree::fit(
                &ds,
                &TreeParams {
                    min_samples_leaf: 0,
                    ..Default::default()
                },
                0
            ),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::from_rows(vec![], vec![], vec![], vec!["c".into()]).unwrap();
        assert!(matches!(
            DecisionTree::fit(&ds, &TreeParams::default(), 0),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn entropy_criterion_also_separates() {
        let ds = separable();
        let params = TreeParams {
            criterion: Criterion::Entropy,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&ds, &params, 2).unwrap();
        assert_eq!(tree.predict(&[0.2, 1.0]), 0);
        assert_eq!(tree.predict(&[3.0, 1.0]), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Count(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(0).resolve(10), 1);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(0), 1);
    }

    #[test]
    fn impurity_functions() {
        assert!((impurity(&[5.0, 5.0], 10.0, Criterion::Gini) - 0.5).abs() < 1e-9);
        assert!((impurity(&[10.0, 0.0], 10.0, Criterion::Gini)).abs() < 1e-9);
        assert!((impurity(&[5.0, 5.0], 10.0, Criterion::Entropy) - 1.0).abs() < 1e-9);
        assert_eq!(impurity(&[0.0, 0.0], 0.0, Criterion::Gini), 0.0);
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[0.2, 0.5, 0.5]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = separable();
        let params = TreeParams {
            max_features: MaxFeatures::Count(1),
            ..Default::default()
        };
        let a = DecisionTree::fit(&ds, &params, 42).unwrap();
        let b = DecisionTree::fit(&ds, &params, 42).unwrap();
        for i in 0..ds.n_samples() {
            assert_eq!(
                a.predict_proba(ds.features().row(i)),
                b.predict_proba(ds.features().row(i))
            );
        }
    }
}
