//! k-nearest-neighbours classifier.
//!
//! The paper lists K-Nearest Neighbors as a future-work comparison model
//! (Section 6). Because the Fuzzy Hash Classifier's features are similarity
//! scores, a distance-based baseline is a natural sanity check: if the
//! forest were not adding value over "find the most similar training
//! sample", KNN would match its F1.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Model;
use crate::tree::argmax;

/// Distance metric between feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean (L2) distance.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
}

impl Metric {
    fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
        }
    }
}

/// Hyper-parameters of the k-NN classifier (the [`Model::Params`] type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnParams {
    /// Number of neighbours that vote.
    pub k: usize,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for KnnParams {
    fn default() -> Self {
        Self {
            k: 5,
            metric: Metric::Euclidean,
        }
    }
}

/// A fitted (memorized) k-NN classifier.
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
    k: usize,
    metric: Metric,
}

impl KNearestNeighbors {
    /// Memorize the training set.
    pub fn fit(ds: &Dataset, k: usize, metric: Metric) -> Result<Self, MlError> {
        if k == 0 {
            return Err(MlError::InvalidParameter("k must be >= 1"));
        }
        if ds.n_samples() == 0 {
            return Err(MlError::EmptyDataset);
        }
        Ok(Self {
            rows: ds.features().rows().map(|r| r.to_vec()).collect(),
            labels: ds.labels().to_vec(),
            n_classes: ds.n_classes(),
            k: k.min(ds.n_samples()),
            metric,
        })
    }

    /// Class-probability estimate: the vote share of each class among the k
    /// nearest neighbours.
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(row, &label)| (self.metric.distance(sample, row), label))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes = vec![0.0; self.n_classes];
        for (_, label) in dists.iter().take(self.k) {
            votes[*label] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in &mut votes {
                *v /= total;
            }
        }
        votes
    }

    /// Predicted class for one sample.
    pub fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.predict_proba(sample))
    }

    /// The `k` actually in use (clamped to the training-set size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of classes in the label space.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Model for KNearestNeighbors {
    type Params = KnnParams;

    /// k-NN is deterministic; the seed is ignored.
    fn fit(ds: &Dataset, params: &KnnParams, _seed: u64) -> Result<Self, MlError> {
        KNearestNeighbors::fit(ds, params.k, params.metric)
    }

    fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        KNearestNeighbors::predict_proba(self, sample)
    }

    fn n_classes(&self) -> usize {
        KNearestNeighbors::n_classes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.1],
                vec![0.2, 0.0],
                vec![5.0, 5.0],
                vec![5.1, 5.2],
                vec![4.9, 5.0],
            ],
            vec![0, 0, 0, 1, 1, 1],
            vec![],
            vec!["near".into(), "far".into()],
        )
        .unwrap()
    }

    #[test]
    fn nearest_neighbour_classifies() {
        let knn = KNearestNeighbors::fit(&toy(), 1, Metric::Euclidean).unwrap();
        assert_eq!(knn.predict(&[0.05, 0.05]), 0);
        assert_eq!(knn.predict(&[5.05, 5.05]), 1);
    }

    #[test]
    fn k3_probabilities() {
        let knn = KNearestNeighbors::fit(&toy(), 3, Metric::Euclidean).unwrap();
        let p = knn.predict_proba(&[0.1, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let knn = KNearestNeighbors::fit(&toy(), 100, Metric::Euclidean).unwrap();
        assert_eq!(knn.k(), 6);
        // With all samples voting, the tie on this symmetric dataset resolves
        // to an argmax that is still a valid class.
        let p = knn.predict_proba(&[2.5, 2.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn manhattan_metric_works() {
        let knn = KNearestNeighbors::fit(&toy(), 1, Metric::Manhattan).unwrap();
        assert_eq!(knn.predict(&[4.5, 4.5]), 1);
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(matches!(
            KNearestNeighbors::fit(&toy(), 0, Metric::Euclidean),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::from_rows(vec![], vec![], vec![], vec!["c".into()]).unwrap();
        assert!(matches!(
            KNearestNeighbors::fit(&ds, 1, Metric::Euclidean),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn metric_distances() {
        assert!((Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((Metric::Manhattan.distance(&[0.0, 0.0], &[3.0, 4.0]) - 7.0).abs() < 1e-12);
    }
}
