//! Gaussian naive Bayes classifier.
//!
//! A second lightweight baseline (alongside k-NN) for the comparisons the
//! paper defers to future work. Each feature is modelled as an independent
//! Gaussian per class; priors come from (optionally balanced) class counts.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Model;
use crate::tree::argmax;

/// Variance floor added to every per-class feature variance for numerical
/// stability (scikit-learn's `var_smoothing` plays the same role).
const VAR_SMOOTHING: f64 = 1e-9;

/// Hyper-parameters of Gaussian naive Bayes (the [`Model::Params`] type).
/// The model has none; the struct exists so naive Bayes plugs into the same
/// generic fit/predict machinery as the other models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaussianNbParams;

/// A fitted Gaussian naive Bayes model.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    /// Per-class log prior.
    log_priors: Vec<f64>,
    /// Per-class per-feature mean.
    means: Vec<Vec<f64>>,
    /// Per-class per-feature variance.
    variances: Vec<Vec<f64>>,
    n_classes: usize,
}

impl GaussianNaiveBayes {
    /// Fit the model.
    pub fn fit(ds: &Dataset) -> Result<Self, MlError> {
        if ds.n_samples() == 0 {
            return Err(MlError::EmptyDataset);
        }
        let n_classes = ds.n_classes();
        let n_features = ds.n_features();
        let mut counts = vec![0usize; n_classes];
        let mut means = vec![vec![0.0; n_features]; n_classes];
        for (i, &label) in ds.labels().iter().enumerate() {
            counts[label] += 1;
            for (j, &v) in ds.features().row(i).iter().enumerate() {
                means[label][j] += v;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                for mean in &mut means[c] {
                    *mean /= *count as f64;
                }
            }
        }
        let mut variances = vec![vec![0.0; n_features]; n_classes];
        for (i, &label) in ds.labels().iter().enumerate() {
            for (j, &v) in ds.features().row(i).iter().enumerate() {
                let d = v - means[label][j];
                variances[label][j] += d * d;
            }
        }
        // Global variance scale for smoothing.
        let mut global_var = 0.0f64;
        for c in 0..n_classes {
            if counts[c] == 0 {
                continue;
            }
            for variance in &mut variances[c] {
                *variance /= counts[c] as f64;
                global_var = global_var.max(*variance);
            }
        }
        let smoothing = VAR_SMOOTHING * global_var.max(1.0);
        for var_row in &mut variances {
            for v in var_row.iter_mut() {
                *v += smoothing;
            }
        }
        let n = ds.n_samples() as f64;
        let log_priors = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n).ln()
                }
            })
            .collect();
        Ok(Self {
            log_priors,
            means,
            variances,
            n_classes,
        })
    }

    /// Per-class log joint likelihood of one sample.
    fn joint_log_likelihood(&self, sample: &[f64]) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| {
                if self.log_priors[c] == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut ll = self.log_priors[c];
                for (j, &x) in sample.iter().enumerate() {
                    let var = self.variances[c][j];
                    let mean = self.means[c][j];
                    ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln())
                        - (x - mean) * (x - mean) / (2.0 * var);
                }
                ll
            })
            .collect()
    }

    /// Class probabilities for one sample (softmax of the joint log
    /// likelihood).
    pub fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        let jll = self.joint_log_likelihood(sample);
        let max = jll.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if max == f64::NEG_INFINITY {
            return vec![1.0 / self.n_classes as f64; self.n_classes];
        }
        let exp: Vec<f64> = jll.iter().map(|&v| (v - max).exp()).collect();
        let total: f64 = exp.iter().sum();
        exp.into_iter().map(|v| v / total).collect()
    }

    /// Predicted class for one sample.
    pub fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.joint_log_likelihood(sample))
    }

    /// Number of classes in the label space.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Model for GaussianNaiveBayes {
    type Params = GaussianNbParams;

    /// Naive Bayes is deterministic and parameter-free; both are ignored.
    fn fit(ds: &Dataset, _params: &GaussianNbParams, _seed: u64) -> Result<Self, MlError> {
        GaussianNaiveBayes::fit(ds)
    }

    fn predict_proba(&self, sample: &[f64]) -> Vec<f64> {
        GaussianNaiveBayes::predict_proba(self, sample)
    }

    fn n_classes(&self) -> usize {
        GaussianNaiveBayes::n_classes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let t = (i as f64) * 0.1;
            rows.push(vec![t.sin() * 0.2, t.cos() * 0.2]);
            labels.push(0);
            rows.push(vec![4.0 + t.sin() * 0.2, 4.0 + t.cos() * 0.2]);
            labels.push(1);
        }
        Dataset::from_rows(rows, labels, vec![], vec!["a".into(), "b".into()]).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let nb = GaussianNaiveBayes::fit(&gaussian_blobs()).unwrap();
        assert_eq!(nb.predict(&[0.0, 0.1]), 0);
        assert_eq!(nb.predict(&[4.1, 3.9]), 1);
    }

    #[test]
    fn probabilities_normalized_and_confident() {
        let nb = GaussianNaiveBayes::fit(&gaussian_blobs()).unwrap();
        let p = nb.predict_proba(&[0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.99);
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::from_rows(vec![], vec![], vec![], vec!["c".into()]).unwrap();
        assert!(matches!(
            GaussianNaiveBayes::fit(&ds),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn absent_class_never_predicted() {
        // Declare 3 classes but only provide samples for 2.
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]],
            vec![0, 0, 2, 2],
            vec![],
            vec!["a".into(), "b".into(), "c".into()],
        )
        .unwrap();
        let nb = GaussianNaiveBayes::fit(&ds).unwrap();
        assert_ne!(nb.predict(&[0.05]), 1);
        assert_ne!(nb.predict(&[5.05]), 1);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let ds = Dataset::from_rows(
            vec![
                vec![1.0, 0.0],
                vec![1.0, 0.2],
                vec![1.0, 5.0],
                vec![1.0, 5.2],
            ],
            vec![0, 0, 1, 1],
            vec![],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let nb = GaussianNaiveBayes::fit(&ds).unwrap();
        let p = nb.predict_proba(&[1.0, 0.1]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&[1.0, 0.1]), 0);
    }
}
