//! Classification metrics: confusion matrix, precision, recall, F1, and the
//! micro / macro / weighted averaging schemes the paper reports.

/// Averaging scheme for multi-class precision / recall / F1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Average {
    /// Aggregate true/false positives over all classes first
    /// (equals accuracy in single-label multi-class problems).
    Micro,
    /// Unweighted mean of per-class scores — every class counts equally,
    /// which is why the paper emphasizes the macro F1 on its imbalanced
    /// dataset.
    Macro,
    /// Mean of per-class scores weighted by class support.
    Weighted,
}

/// Per-class counts derived from predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// Number of true instances of the class.
    pub support: usize,
}

/// Precision, recall and F1 for one class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrecisionRecallF1 {
    /// Precision = tp / (tp + fp); 0 when the denominator is 0.
    pub precision: f64,
    /// Recall = tp / (tp + fn); 0 when the denominator is 0.
    pub recall: f64,
    /// Harmonic mean of precision and recall (Equation 2 of the paper).
    pub f1: f64,
    /// Number of true instances of the class.
    pub support: usize,
}

/// Dense confusion matrix: `matrix[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    n_classes: usize,
}

impl ConfusionMatrix {
    /// Build the confusion matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if the label vectors have different lengths or contain labels
    /// `>= n_classes`.
    pub fn compute(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "label vectors must align");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            counts[t][p] += 1;
        }
        Self { counts, n_classes }
    }

    /// Number of samples with true class `t` predicted as class `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class tp / fp / fn / support.
    pub fn class_counts(&self) -> Vec<ClassCounts> {
        (0..self.n_classes)
            .map(|c| {
                let tp = self.counts[c][c];
                let fp: usize = (0..self.n_classes)
                    .filter(|&t| t != c)
                    .map(|t| self.counts[t][c])
                    .sum();
                let fn_: usize = (0..self.n_classes)
                    .filter(|&p| p != c)
                    .map(|p| self.counts[c][p])
                    .sum();
                let support: usize = self.counts[c].iter().sum();
                ClassCounts {
                    tp,
                    fp,
                    fn_,
                    support,
                }
            })
            .collect()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes).map(|c| self.counts[c][c]).sum();
        let total: usize = self
            .counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Precision / recall / F1 for every class.
pub fn per_class_metrics(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
) -> Vec<PrecisionRecallF1> {
    let cm = ConfusionMatrix::compute(y_true, y_pred, n_classes);
    cm.class_counts()
        .iter()
        .map(|c| {
            let precision = safe_div(c.tp as f64, (c.tp + c.fp) as f64);
            let recall = safe_div(c.tp as f64, (c.tp + c.fn_) as f64);
            let f1 = safe_div(2.0 * precision * recall, precision + recall);
            PrecisionRecallF1 {
                precision,
                recall,
                f1,
                support: c.support,
            }
        })
        .collect()
}

/// Averaged precision / recall / F1 under the chosen scheme.
///
/// Classes with zero support are excluded from the macro average (they carry
/// no information about the evaluation set), matching how the paper's report
/// only lists classes present in the test set.
pub fn precision_recall_f1(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
    average: Average,
) -> PrecisionRecallF1 {
    let per_class = per_class_metrics(y_true, y_pred, n_classes);
    let total_support: usize = per_class.iter().map(|c| c.support).sum();
    match average {
        Average::Micro => {
            let cm = ConfusionMatrix::compute(y_true, y_pred, n_classes);
            let counts = cm.class_counts();
            let tp: usize = counts.iter().map(|c| c.tp).sum();
            let fp: usize = counts.iter().map(|c| c.fp).sum();
            let fn_: usize = counts.iter().map(|c| c.fn_).sum();
            let precision = safe_div(tp as f64, (tp + fp) as f64);
            let recall = safe_div(tp as f64, (tp + fn_) as f64);
            let f1 = safe_div(2.0 * precision * recall, precision + recall);
            PrecisionRecallF1 {
                precision,
                recall,
                f1,
                support: total_support,
            }
        }
        Average::Macro => {
            let present: Vec<&PrecisionRecallF1> =
                per_class.iter().filter(|c| c.support > 0).collect();
            let n = present.len().max(1) as f64;
            PrecisionRecallF1 {
                precision: present.iter().map(|c| c.precision).sum::<f64>() / n,
                recall: present.iter().map(|c| c.recall).sum::<f64>() / n,
                f1: present.iter().map(|c| c.f1).sum::<f64>() / n,
                support: total_support,
            }
        }
        Average::Weighted => {
            let denom = total_support.max(1) as f64;
            PrecisionRecallF1 {
                precision: per_class
                    .iter()
                    .map(|c| c.precision * c.support as f64)
                    .sum::<f64>()
                    / denom,
                recall: per_class
                    .iter()
                    .map(|c| c.recall * c.support as f64)
                    .sum::<f64>()
                    / denom,
                f1: per_class
                    .iter()
                    .map(|c| c.f1 * c.support as f64)
                    .sum::<f64>()
                    / denom,
                support: total_support,
            }
        }
    }
}

/// The F1 score under the chosen averaging scheme.
pub fn f1_score(y_true: &[usize], y_pred: &[usize], n_classes: usize, average: Average) -> f64 {
    precision_recall_f1(y_true, y_pred, n_classes, average).f1
}

/// Plain accuracy.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    correct as f64 / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // y_true / y_pred fixture with known counts:
    // class 0: 3 true, 2 predicted correctly
    // class 1: 2 true, 1 predicted correctly
    // class 2: 1 true, predicted correctly
    fn fixture() -> (Vec<usize>, Vec<usize>) {
        let y_true = vec![0, 0, 0, 1, 1, 2];
        let y_pred = vec![0, 0, 1, 1, 2, 2];
        (y_true, y_pred)
    }

    #[test]
    fn confusion_matrix_counts() {
        let (t, p) = fixture();
        let cm = ConfusionMatrix::compute(&t, &p, 3);
        assert_eq!(cm.get(0, 0), 2);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 2), 1);
        assert_eq!(cm.get(2, 2), 1);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_values() {
        let (t, p) = fixture();
        let m = per_class_metrics(&t, &p, 3);
        // class 0: tp=2, fp=0, fn=1 -> precision 1.0, recall 2/3
        assert!((m[0].precision - 1.0).abs() < 1e-12);
        assert!((m[0].recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m[0].support, 3);
        // class 2: tp=1, fp=1, fn=0 -> precision 0.5, recall 1.0
        assert!((m[2].precision - 0.5).abs() < 1e-12);
        assert!((m[2].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn micro_average_equals_accuracy() {
        let (t, p) = fixture();
        let micro = precision_recall_f1(&t, &p, 3, Average::Micro);
        let acc = accuracy(&t, &p);
        assert!((micro.precision - acc).abs() < 1e-12);
        assert!((micro.recall - acc).abs() < 1e-12);
        assert!((micro.f1 - acc).abs() < 1e-12);
    }

    #[test]
    fn macro_is_unweighted_mean() {
        let (t, p) = fixture();
        let per = per_class_metrics(&t, &p, 3);
        let macro_ = precision_recall_f1(&t, &p, 3, Average::Macro);
        let mean_f1: f64 = per.iter().map(|c| c.f1).sum::<f64>() / 3.0;
        assert!((macro_.f1 - mean_f1).abs() < 1e-12);
    }

    #[test]
    fn weighted_weights_by_support() {
        let (t, p) = fixture();
        let per = per_class_metrics(&t, &p, 3);
        let weighted = precision_recall_f1(&t, &p, 3, Average::Weighted);
        let expect: f64 = per.iter().map(|c| c.f1 * c.support as f64).sum::<f64>() / 6.0;
        assert!((weighted.f1 - expect).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_are_all_one() {
        let y = vec![0, 1, 2, 1, 0];
        for avg in [Average::Micro, Average::Macro, Average::Weighted] {
            let m = precision_recall_f1(&y, &y, 3, avg);
            assert!((m.precision - 1.0).abs() < 1e-12);
            assert!((m.recall - 1.0).abs() < 1e-12);
            assert!((m.f1 - 1.0).abs() < 1e-12);
        }
        assert_eq!(accuracy(&y, &y), 1.0);
    }

    #[test]
    fn absent_class_excluded_from_macro() {
        // Class 2 never appears in y_true.
        let y_true = vec![0, 0, 1, 1];
        let y_pred = vec![0, 0, 1, 0];
        let m = precision_recall_f1(&y_true, &y_pred, 3, Average::Macro);
        // Macro average over classes 0 and 1 only.
        let per = per_class_metrics(&y_true, &y_pred, 3);
        let expected = (per[0].f1 + per[1].f1) / 2.0;
        assert!((m.f1 - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_division_yields_zero() {
        // Class 1 predicted never and present never -> all zeros, no NaN.
        let y_true = vec![0, 0];
        let y_pred = vec![0, 0];
        let per = per_class_metrics(&y_true, &y_pred, 2);
        assert_eq!(per[1].precision, 0.0);
        assert_eq!(per[1].recall, 0.0);
        assert_eq!(per[1].f1, 0.0);
        assert!(per[1].f1.is_finite());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        let cm = ConfusionMatrix::compute(&[], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = ConfusionMatrix::compute(&[0, 1], &[0], 2);
    }
}
