//! Labeled datasets: a feature matrix plus integer class labels and names.

use crate::error::MlError;
use crate::matrix::Matrix;

/// A labeled dataset.
///
/// Labels are class *indices* into `class_names`; the Fuzzy Hash Classifier
/// reserves an extra synthetic class for "unknown" at a higher layer, so this
/// type stays agnostic of that convention.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    feature_names: Vec<String>,
    class_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset from row vectors.
    ///
    /// `feature_names` may be empty, in which case names `f0..fN` are
    /// generated. `class_names` must cover every label used.
    pub fn from_rows(
        rows: Vec<Vec<f64>>,
        labels: Vec<usize>,
        feature_names: Vec<String>,
        class_names: Vec<String>,
    ) -> Result<Self, MlError> {
        let features = Matrix::from_rows(rows)?;
        Self::new(features, labels, feature_names, class_names)
    }

    /// Build a dataset from an existing matrix.
    pub fn new(
        features: Matrix,
        labels: Vec<usize>,
        mut feature_names: Vec<String>,
        class_names: Vec<String>,
    ) -> Result<Self, MlError> {
        if features.n_rows() != labels.len() {
            return Err(MlError::LengthMismatch {
                rows: features.n_rows(),
                labels: labels.len(),
            });
        }
        if feature_names.is_empty() {
            feature_names = (0..features.n_cols()).map(|i| format!("f{i}")).collect();
        }
        if feature_names.len() != features.n_cols() {
            return Err(MlError::RaggedRows {
                expected: features.n_cols(),
                found: feature_names.len(),
                row: 0,
            });
        }
        let n_classes = class_names.len();
        if let Some(&bad) = labels.iter().find(|&&l| l >= n_classes) {
            return Err(MlError::LabelOutOfRange {
                label: bad,
                n_classes,
            });
        }
        Ok(Self {
            features,
            labels,
            feature_names,
            class_names,
        })
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The label of each row.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Class names, indexed by label value.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.features.n_rows()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.features.n_cols()
    }

    /// Number of declared classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Per-class sample counts (indexed by label).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing only the given rows (indices may repeat).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            feature_names: self.feature_names.clone(),
            class_names: self.class_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.5, 0.5],
                vec![0.9, 0.1],
            ],
            vec![0, 1, 0, 1],
            vec!["a".into(), "b".into()],
            vec!["zero".into(), "one".into()],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.n_samples(), 4);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.class_counts(), vec![2, 2]);
        assert_eq!(ds.feature_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn generated_feature_names() {
        let ds = Dataset::from_rows(
            vec![vec![1.0, 2.0, 3.0]],
            vec![0],
            vec![],
            vec!["only".into()],
        )
        .unwrap();
        assert_eq!(
            ds.feature_names(),
            &["f0".to_string(), "f1".into(), "f2".into()]
        );
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let err =
            Dataset::from_rows(vec![vec![1.0]], vec![0, 1], vec![], vec!["c".into()]).unwrap_err();
        assert!(matches!(err, MlError::LengthMismatch { .. }));
    }

    #[test]
    fn label_out_of_range_rejected() {
        let err =
            Dataset::from_rows(vec![vec![1.0]], vec![3], vec![], vec!["c".into()]).unwrap_err();
        assert!(matches!(
            err,
            MlError::LabelOutOfRange {
                label: 3,
                n_classes: 1
            }
        ));
    }

    #[test]
    fn feature_name_count_must_match() {
        let err = Dataset::from_rows(
            vec![vec![1.0, 2.0]],
            vec![0],
            vec!["only_one".into()],
            vec!["c".into()],
        )
        .unwrap_err();
        assert!(matches!(err, MlError::RaggedRows { .. }));
    }

    #[test]
    fn subset_selects_rows_and_labels() {
        let ds = toy();
        let sub = ds.subset(&[3, 0, 3]);
        assert_eq!(sub.n_samples(), 3);
        assert_eq!(sub.labels(), &[1, 0, 1]);
        assert_eq!(sub.features().row(0), ds.features().row(3));
        assert_eq!(sub.class_names(), ds.class_names());
    }
}
