//! From-scratch machine-learning substrate for the Fuzzy Hash Classifier.
//!
//! The paper trains a scikit-learn `RandomForestClassifier` on fuzzy-hash
//! similarity features, tunes it with a grid search inside the training set,
//! handles class imbalance with balanced class weights, and reports
//! micro/macro/weighted precision, recall and F1. This crate reimplements
//! everything that pipeline needs:
//!
//! * [`matrix`] / [`dataset`] — dense row-major feature matrices and labeled
//!   datasets with named classes.
//! * [`tree`] — CART decision trees (Gini or entropy impurity, depth and
//!   leaf-size controls, per-split random feature subsampling, sample
//!   weights).
//! * [`forest`] — bootstrap-aggregated random forests with balanced class
//!   weights, probability prediction, and mean-decrease-in-impurity feature
//!   importances; trees grow in parallel.
//! * [`model`] — the polymorphic [`Model`] fit/predict trait
//!   implemented by the forest, k-NN, and naive Bayes, so grid search,
//!   cross-validation, and the baselines share one interface.
//! * [`knn`] and [`naive_bayes`] — the baseline models the paper lists as
//!   future-work comparisons (k-nearest-neighbours, Gaussian naive Bayes).
//! * [`metrics`] / [`report`] — confusion matrices, per-class precision /
//!   recall / F1, micro / macro / weighted averages, and a
//!   scikit-learn-style classification report.
//! * [`split`] / [`crossval`] — stratified train/test splits, class-level
//!   (group) splits, and stratified k-fold cross-validation.
//! * [`gridsearch`] — exhaustive hyper-parameter search over random-forest
//!   configurations scored by cross-validated F1.
//! * [`class_weight`] — `class_weight="balanced"` sample weighting.
//!
//! # Quick start
//!
//! ```
//! use mlcore::dataset::Dataset;
//! use mlcore::forest::{RandomForest, RandomForestParams};
//!
//! // A toy two-class problem: class 0 lives near the origin, class 1 away.
//! let mut rows = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..40 {
//!     let offset = if i % 2 == 0 { 0.0 } else { 5.0 };
//!     rows.push(vec![offset + (i % 7) as f64 * 0.1, offset - (i % 5) as f64 * 0.1]);
//!     labels.push(i % 2);
//! }
//! let ds = Dataset::from_rows(rows, labels, vec!["f0".into(), "f1".into()],
//!                             vec!["near".into(), "far".into()]).unwrap();
//! let forest = RandomForest::fit(&ds, &RandomForestParams { n_estimators: 20, ..Default::default() }, 7).unwrap();
//! let pred = forest.predict(&[5.05, 4.9]);
//! assert_eq!(pred, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class_weight;
pub mod crossval;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod gridsearch;
pub mod knn;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod report;
pub mod split;
pub mod tree;

pub use dataset::Dataset;
pub use error::MlError;
pub use forest::{RandomForest, RandomForestParams};
pub use knn::{KNearestNeighbors, KnnParams};
pub use matrix::Matrix;
pub use metrics::{f1_score, precision_recall_f1, Average};
pub use model::Model;
pub use naive_bayes::{GaussianNaiveBayes, GaussianNbParams};
pub use report::ClassificationReport;
