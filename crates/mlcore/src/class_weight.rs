//! Balanced class weighting.
//!
//! The paper addresses its highly imbalanced 92-class dataset by "assigning
//! balanced weights to classes inversely proportional to class frequencies"
//! — scikit-learn's `class_weight="balanced"`. The weight of class `c` is
//! `n_samples / (n_classes_present * count_c)`, so the total weight assigned
//! to each *present* class is equal.

/// Per-class balanced weights (indexed by label). Absent classes get weight
/// 0 — they contribute no samples anyway.
pub fn balanced_class_weights(labels: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l] += 1;
    }
    let present = counts.iter().filter(|&&c| c > 0).count();
    let n = labels.len() as f64;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                n / (present as f64 * c as f64)
            }
        })
        .collect()
}

/// Per-sample weights obtained by looking up each sample's class weight.
pub fn balanced_sample_weights(labels: &[usize], n_classes: usize) -> Vec<f64> {
    let class_w = balanced_class_weights(labels, n_classes);
    labels.iter().map(|&l| class_w[l]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_dataset_gets_unit_weights() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        let w = balanced_class_weights(&labels, 3);
        for x in w {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn minority_class_weighted_up() {
        // class 0: 8 samples, class 1: 2 samples
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let w = balanced_class_weights(&labels, 2);
        assert!((w[0] - 10.0 / (2.0 * 8.0)).abs() < 1e-12);
        assert!((w[1] - 10.0 / (2.0 * 2.0)).abs() < 1e-12);
        assert!(w[1] > w[0]);
    }

    #[test]
    fn total_weight_per_class_is_equal() {
        let labels = vec![0, 0, 0, 0, 0, 0, 1, 1, 2];
        let sw = balanced_sample_weights(&labels, 3);
        let mut per_class = [0.0f64; 3];
        for (&l, &w) in labels.iter().zip(&sw) {
            per_class[l] += w;
        }
        assert!((per_class[0] - per_class[1]).abs() < 1e-9);
        assert!((per_class[1] - per_class[2]).abs() < 1e-9);
    }

    #[test]
    fn absent_class_gets_zero() {
        let labels = vec![0, 0, 2];
        let w = balanced_class_weights(&labels, 4);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[3], 0.0);
        assert!(w[0] > 0.0 && w[2] > 0.0);
    }

    #[test]
    fn sample_weights_sum_to_n_samples() {
        let labels = vec![0, 0, 0, 1, 1, 2, 2, 2, 2, 2];
        let sw = balanced_sample_weights(&labels, 3);
        let total: f64 = sw.iter().sum();
        assert!((total - labels.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn empty_labels_yield_zero_weights() {
        let w = balanced_class_weights(&[], 3);
        assert_eq!(w, vec![0.0, 0.0, 0.0]);
    }
}
