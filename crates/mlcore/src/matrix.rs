//! A minimal dense row-major matrix of `f64` features.
//!
//! The similarity feature matrices in this project are dense (every test
//! sample has a similarity score against every known class for every hash
//! type), moderately sized (thousands of rows, a few hundred columns), and
//! only ever read row-wise or column-wise. A flat `Vec<f64>` with row-major
//! indexing keeps the hot training loops cache-friendly and avoids the
//! per-row allocations of a `Vec<Vec<f64>>`.

use crate::error::MlError;

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            data: vec![0.0; n_rows * n_cols],
            n_rows,
            n_cols,
        }
    }

    /// Build a matrix from row vectors, checking that all rows have equal
    /// width.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Ok(Self {
                data: Vec::new(),
                n_rows: 0,
                n_cols: 0,
            });
        }
        let n_cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(MlError::RaggedRows {
                    expected: n_cols,
                    found: row.len(),
                    row: i,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            data,
            n_rows: rows.len(),
            n_cols,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.n_rows);
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Read the element at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n_cols + col]
    }

    /// Write the element at (`row`, `col`).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n_cols + col] = value;
    }

    /// Copy column `col` into a new vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.n_rows).map(|r| self.get(r, col)).collect()
    }

    /// Build a new matrix containing only the listed rows (in the given
    /// order). Indices may repeat, which is how bootstrap samples are formed.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.n_cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            n_rows: indices.len(),
            n_cols: self.n_cols,
        }
    }

    /// Iterate over rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.n_rows).map(move |i| self.row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.row(2), &[0.0; 4]);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, MlError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = Matrix::from_rows(vec![]).unwrap();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.rows().count(), 0);
    }

    #[test]
    fn set_and_get() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 7.5);
        m.set(1, 0, -2.0);
        assert_eq!(m.get(0, 1), 7.5);
        assert_eq!(m.get(1, 0), -2.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn select_rows_with_repeats() {
        let m = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let sub = m.select_rows(&[2, 0, 2]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.column(0), vec![3.0, 1.0, 3.0]);
    }

    #[test]
    fn rows_iterator_matches_row_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let collected: Vec<Vec<f64>> = m.rows().map(|r| r.to_vec()).collect();
        assert_eq!(collected, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
