//! Stratified k-fold cross-validation.
//!
//! The paper tunes hyper-parameters "through grid search only within the
//! training set"; cross-validation inside the training set is the standard
//! way to score each grid point without touching the test set.

use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// One fold: the sample indices used for validation; everything else trains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training indices for this fold.
    pub train: Vec<usize>,
    /// Validation indices for this fold.
    pub validation: Vec<usize>,
}

/// Produce `k` stratified folds over `labels`.
///
/// Every sample appears in exactly one validation fold. Classes with fewer
/// samples than `k` still work: their samples are spread over as many folds
/// as they have members.
pub fn stratified_k_fold(labels: &[usize], k: usize, seed: u64) -> Result<Vec<Fold>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidParameter("k must be >= 2"));
    }
    if labels.len() < k {
        return Err(MlError::InvalidSplit(format!(
            "cannot make {k} folds from {} samples",
            labels.len()
        )));
    }
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &label) in labels.iter().enumerate() {
        by_class.entry(label).or_default().push(i);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut fold_validation: Vec<Vec<usize>> = vec![Vec::new(); k];
    // Deal each class's samples round-robin into the folds, starting from a
    // rotating offset so small classes don't all pile into fold 0.
    let mut offset = 0usize;
    for (_, mut indices) in by_class {
        indices.shuffle(&mut rng);
        for (j, idx) in indices.into_iter().enumerate() {
            fold_validation[(offset + j) % k].push(idx);
        }
        offset += 1;
    }
    let all: Vec<usize> = (0..labels.len()).collect();
    let folds = fold_validation
        .into_iter()
        .map(|mut validation| {
            validation.sort_unstable();
            let train: Vec<usize> =
                all.iter().copied().filter(|i| validation.binary_search(i).is_err()).collect();
            Fold { train, validation }
        })
        .collect();
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_samples() {
        let labels: Vec<usize> = (0..100).map(|i| i % 5).collect();
        let folds = stratified_k_fold(&labels, 4, 1).unwrap();
        assert_eq!(folds.len(), 4);
        let mut seen = vec![0usize; 100];
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.validation.len(), 100);
            for &i in &fold.validation {
                seen[i] += 1;
            }
            for &i in &fold.train {
                assert!(!fold.validation.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each sample validates exactly once");
    }

    #[test]
    fn folds_are_roughly_stratified() {
        // 40 samples of class 0, 8 of class 1, 4 folds.
        let mut labels = vec![0usize; 40];
        labels.extend(vec![1usize; 8]);
        let folds = stratified_k_fold(&labels, 4, 2).unwrap();
        for fold in &folds {
            let c1 = fold.validation.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c1, 2, "class 1 spread evenly across folds");
        }
    }

    #[test]
    fn tiny_classes_do_not_panic() {
        let labels = vec![0, 0, 0, 0, 0, 1, 2, 3];
        let folds = stratified_k_fold(&labels, 3, 0).unwrap();
        let total_validation: usize = folds.iter().map(|f| f.validation.len()).sum();
        assert_eq!(total_validation, labels.len());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(stratified_k_fold(&[0, 1, 2], 1, 0).is_err());
        assert!(stratified_k_fold(&[0, 1], 3, 0).is_err());
    }

    #[test]
    fn deterministic() {
        let labels: Vec<usize> = (0..60).map(|i| i % 6).collect();
        assert_eq!(
            stratified_k_fold(&labels, 5, 9).unwrap(),
            stratified_k_fold(&labels, 5, 9).unwrap()
        );
    }
}
