//! Stratified k-fold cross-validation.
//!
//! The paper tunes hyper-parameters "through grid search only within the
//! training set"; cross-validation inside the training set is the standard
//! way to score each grid point without touching the test set.
//! [`cross_validate`] scores any [`Model`] implementation — the forest, the
//! k-NN baseline, and naive Bayes all go through the same code path.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::metrics::{f1_score, Average};
use crate::model::Model;
use hpcutil::SeedSequence;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// One fold: the sample indices used for validation; everything else trains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training indices for this fold.
    pub train: Vec<usize>,
    /// Validation indices for this fold.
    pub validation: Vec<usize>,
}

/// Produce `k` stratified folds over `labels`.
///
/// Every sample appears in exactly one validation fold. Classes with fewer
/// samples than `k` still work: their samples are spread over as many folds
/// as they have members.
pub fn stratified_k_fold(labels: &[usize], k: usize, seed: u64) -> Result<Vec<Fold>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidParameter("k must be >= 2"));
    }
    if labels.len() < k {
        return Err(MlError::InvalidSplit(format!(
            "cannot make {k} folds from {} samples",
            labels.len()
        )));
    }
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &label) in labels.iter().enumerate() {
        by_class.entry(label).or_default().push(i);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut fold_validation: Vec<Vec<usize>> = vec![Vec::new(); k];
    // Deal each class's samples round-robin into the folds, starting from a
    // rotating offset so small classes don't all pile into fold 0.
    for (offset, (_, mut indices)) in by_class.into_iter().enumerate() {
        indices.shuffle(&mut rng);
        for (j, idx) in indices.into_iter().enumerate() {
            fold_validation[(offset + j) % k].push(idx);
        }
    }
    let all: Vec<usize> = (0..labels.len()).collect();
    let folds = fold_validation
        .into_iter()
        .map(|mut validation| {
            validation.sort_unstable();
            let train: Vec<usize> = all
                .iter()
                .copied()
                .filter(|i| validation.binary_search(i).is_err())
                .collect();
            Fold { train, validation }
        })
        .collect();
    Ok(folds)
}

/// Cross-validated F1 of one model configuration over pre-computed folds.
///
/// For each fold, fits `M` on the training subset (tree growing and any
/// other model randomness derive from `seeds`, one child seed per fold) and
/// scores the held-out validation rows. Returns the per-fold scores in fold
/// order. Sharing `folds` across calls is what lets a grid search compare
/// configurations on identical splits.
pub fn cross_validate_folds<M: Model>(
    ds: &Dataset,
    params: &M::Params,
    folds: &[Fold],
    seeds: &SeedSequence,
    average: Average,
) -> Result<Vec<f64>, MlError> {
    let mut scores = Vec::with_capacity(folds.len());
    for (fi, fold) in folds.iter().enumerate() {
        let train = ds.subset(&fold.train);
        let model = M::fit(&train, params, seeds.derive_indexed("fold", fi as u64))?;
        let y_true: Vec<usize> = fold.validation.iter().map(|&i| ds.labels()[i]).collect();
        let y_pred: Vec<usize> = fold
            .validation
            .iter()
            .map(|&i| model.predict(ds.features().row(i)))
            .collect();
        scores.push(f1_score(&y_true, &y_pred, ds.n_classes(), average));
    }
    Ok(scores)
}

/// Convenience wrapper: build `k` stratified folds from `seed` and
/// cross-validate one model configuration on them.
pub fn cross_validate<M: Model>(
    ds: &Dataset,
    params: &M::Params,
    k: usize,
    seed: u64,
    average: Average,
) -> Result<Vec<f64>, MlError> {
    let folds = stratified_k_fold(ds.labels(), k, seed)?;
    cross_validate_folds::<M>(ds, params, &folds, &SeedSequence::new(seed), average)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_samples() {
        let labels: Vec<usize> = (0..100).map(|i| i % 5).collect();
        let folds = stratified_k_fold(&labels, 4, 1).unwrap();
        assert_eq!(folds.len(), 4);
        let mut seen = vec![0usize; 100];
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.validation.len(), 100);
            for &i in &fold.validation {
                seen[i] += 1;
            }
            for &i in &fold.train {
                assert!(!fold.validation.contains(&i));
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each sample validates exactly once"
        );
    }

    #[test]
    fn folds_are_roughly_stratified() {
        // 40 samples of class 0, 8 of class 1, 4 folds.
        let mut labels = vec![0usize; 40];
        labels.extend(vec![1usize; 8]);
        let folds = stratified_k_fold(&labels, 4, 2).unwrap();
        for fold in &folds {
            let c1 = fold.validation.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c1, 2, "class 1 spread evenly across folds");
        }
    }

    #[test]
    fn tiny_classes_do_not_panic() {
        let labels = vec![0, 0, 0, 0, 0, 1, 2, 3];
        let folds = stratified_k_fold(&labels, 3, 0).unwrap();
        let total_validation: usize = folds.iter().map(|f| f.validation.len()).sum();
        assert_eq!(total_validation, labels.len());
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(stratified_k_fold(&[0, 1, 2], 1, 0).is_err());
        assert!(stratified_k_fold(&[0, 1], 3, 0).is_err());
    }

    #[test]
    fn deterministic() {
        let labels: Vec<usize> = (0..60).map(|i| i % 6).collect();
        assert_eq!(
            stratified_k_fold(&labels, 5, 9).unwrap(),
            stratified_k_fold(&labels, 5, 9).unwrap()
        );
    }

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..12 {
                rows.push(vec![
                    4.0 * c as f64 + (i % 5) as f64 * 0.1,
                    -4.0 * c as f64 + (i % 3) as f64 * 0.1,
                ]);
                labels.push(c);
            }
        }
        Dataset::from_rows(
            rows,
            labels,
            vec![],
            (0..3).map(|c| format!("c{c}")).collect(),
        )
        .unwrap()
    }

    #[test]
    fn cross_validate_scores_every_model_kind() {
        use crate::forest::{RandomForest, RandomForestParams};
        use crate::knn::{KNearestNeighbors, KnnParams};
        use crate::naive_bayes::{GaussianNaiveBayes, GaussianNbParams};

        let ds = blobs();
        let forest_scores = cross_validate::<RandomForest>(
            &ds,
            &RandomForestParams {
                n_estimators: 10,
                ..Default::default()
            },
            3,
            5,
            Average::Macro,
        )
        .unwrap();
        let knn_scores =
            cross_validate::<KNearestNeighbors>(&ds, &KnnParams::default(), 3, 5, Average::Macro)
                .unwrap();
        let nb_scores =
            cross_validate::<GaussianNaiveBayes>(&ds, &GaussianNbParams, 3, 5, Average::Macro)
                .unwrap();
        for scores in [&forest_scores, &knn_scores, &nb_scores] {
            assert_eq!(scores.len(), 3);
            // Clean blobs: every model should score well on every fold.
            assert!(scores.iter().all(|&s| s > 0.8), "scores {scores:?}");
        }
    }

    #[test]
    fn cross_validate_is_deterministic() {
        use crate::forest::{RandomForest, RandomForestParams};
        let ds = blobs();
        let params = RandomForestParams {
            n_estimators: 8,
            ..Default::default()
        };
        let a = cross_validate::<RandomForest>(&ds, &params, 3, 2, Average::Macro).unwrap();
        let b = cross_validate::<RandomForest>(&ds, &params, 3, 2, Average::Macro).unwrap();
        assert_eq!(a, b);
    }
}
