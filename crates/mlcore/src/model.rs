//! The polymorphic model interface.
//!
//! The paper's pipeline trains a random forest, and its future-work section
//! compares against k-nearest-neighbours and naive Bayes. Before this trait
//! existed, grid search, cross-validation, and the baselines each called one
//! concrete model type directly; [`Model`] gives them a single fit/predict
//! interface so any probabilistic classifier can slot into any of those
//! harnesses:
//!
//! * [`Model::fit`] trains from a [`Dataset`], a model-specific parameter
//!   struct ([`Model::Params`]), and an explicit seed (deterministic models
//!   simply ignore it).
//! * [`Model::predict_proba`] is the one required prediction method; class
//!   prediction and the parallel batch variants are derived from it.
//!
//! ```
//! use mlcore::dataset::Dataset;
//! use mlcore::knn::{KNearestNeighbors, KnnParams, Metric};
//! use mlcore::model::Model;
//! use mlcore::naive_bayes::{GaussianNaiveBayes, GaussianNbParams};
//!
//! fn macro_accuracy<M: Model>(ds: &Dataset, params: &M::Params) -> f64 {
//!     let model = M::fit(ds, params, 7).unwrap();
//!     let hits = (0..ds.n_samples())
//!         .filter(|&i| model.predict(ds.features().row(i)) == ds.labels()[i])
//!         .count();
//!     hits as f64 / ds.n_samples() as f64
//! }
//!
//! let ds = Dataset::from_rows(
//!     vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]],
//!     vec![0, 0, 1, 1],
//!     vec![],
//!     vec!["near".into(), "far".into()],
//! ).unwrap();
//! let knn_params = KnnParams { k: 1, metric: Metric::Euclidean };
//! assert_eq!(macro_accuracy::<KNearestNeighbors>(&ds, &knn_params), 1.0);
//! assert_eq!(macro_accuracy::<GaussianNaiveBayes>(&ds, &GaussianNbParams::default()), 1.0);
//! ```

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::argmax;
use hpcutil::{par_map_indexed, ParallelConfig};

/// A probabilistic classifier that can be fit on a dataset and queried for
/// per-class probabilities.
///
/// `Send + Sync` is required so fitted models can score batches in parallel
/// and be shared across serving threads.
pub trait Model: Send + Sync {
    /// Model-specific hyper-parameters consumed by [`Model::fit`].
    type Params;

    /// Fit the model on `ds`. Stochastic models derive all randomness from
    /// `seed`; deterministic models ignore it.
    fn fit(ds: &Dataset, params: &Self::Params, seed: u64) -> Result<Self, MlError>
    where
        Self: Sized;

    /// Probability estimate over the known classes for one feature vector.
    fn predict_proba(&self, sample: &[f64]) -> Vec<f64>;

    /// Number of classes in the model's label space.
    fn n_classes(&self) -> usize;

    /// Predicted class index for one sample (argmax of the probabilities).
    fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.predict_proba(sample))
    }

    /// Predict every row of a feature matrix (in parallel).
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize>
    where
        Self: Sized,
    {
        par_map_indexed(rows.len(), ParallelConfig::default(), |i| {
            self.predict(&rows[i])
        })
    }

    /// Probability predictions for every row of a feature matrix
    /// (in parallel).
    fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>>
    where
        Self: Sized,
    {
        par_map_indexed(rows.len(), ParallelConfig::default(), |i| {
            self.predict_proba(&rows[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestParams};
    use crate::knn::{KNearestNeighbors, KnnParams, Metric};
    use crate::naive_bayes::{GaussianNaiveBayes, GaussianNbParams};

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..12 {
                rows.push(vec![
                    4.0 * c as f64 + (i % 5) as f64 * 0.1,
                    -4.0 * c as f64 + (i % 3) as f64 * 0.1,
                ]);
                labels.push(c);
            }
        }
        Dataset::from_rows(
            rows,
            labels,
            vec![],
            (0..3).map(|c| format!("c{c}")).collect(),
        )
        .unwrap()
    }

    /// One generic harness exercising every Model implementation the same
    /// way — the point of the trait.
    fn exercise<M: Model>(params: &M::Params) {
        let ds = blobs();
        let model = M::fit(&ds, params, 11).unwrap();
        assert_eq!(model.n_classes(), 3);
        let rows: Vec<Vec<f64>> = ds.features().rows().map(|r| r.to_vec()).collect();
        let probas = model.predict_proba_batch(&rows);
        let preds = model.predict_batch(&rows);
        assert_eq!(probas.len(), ds.n_samples());
        let mut correct = 0;
        for (i, (proba, &pred)) in probas.iter().zip(&preds).enumerate() {
            assert_eq!(proba.len(), 3);
            assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(pred, model.predict(&rows[i]));
            assert_eq!(proba, &model.predict_proba(&rows[i]));
            if pred == ds.labels()[i] {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / ds.n_samples() as f64 > 0.9,
            "model should separate clean blobs, got {correct}/{}",
            ds.n_samples()
        );
    }

    #[test]
    fn forest_through_the_trait() {
        exercise::<RandomForest>(&RandomForestParams {
            n_estimators: 20,
            ..Default::default()
        });
    }

    #[test]
    fn knn_through_the_trait() {
        exercise::<KNearestNeighbors>(&KnnParams {
            k: 3,
            metric: Metric::Euclidean,
        });
    }

    #[test]
    fn naive_bayes_through_the_trait() {
        exercise::<GaussianNaiveBayes>(&GaussianNbParams);
    }

    #[test]
    fn trait_objects_can_serve_heterogeneous_models() {
        // dyn-compatibility of the predict side: a serving layer can hold
        // models of different kinds behind one pointer type.
        let ds = blobs();
        let models: Vec<Box<dyn Model<Params = KnnParams>>> = vec![
            Box::new(KNearestNeighbors::fit(&ds, 1, Metric::Euclidean).unwrap()),
            Box::new(KNearestNeighbors::fit(&ds, 5, Metric::Manhattan).unwrap()),
        ];
        for model in &models {
            assert_eq!(model.n_classes(), 3);
            assert_eq!(model.predict(ds.features().row(0)), ds.labels()[0]);
        }
    }
}
