//! Error type shared by the ML substrate.

use std::fmt;

/// Errors raised while building datasets or fitting models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The feature matrix and label vector have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Rows of the feature matrix have inconsistent widths.
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Width of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A label index is outside the declared class set.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of declared classes.
        n_classes: usize,
    },
    /// The operation requires a non-empty dataset.
    EmptyDataset,
    /// A hyper-parameter value is invalid (e.g. zero trees).
    InvalidParameter(&'static str),
    /// A split was requested that cannot be satisfied (e.g. a fold count
    /// larger than the smallest class).
    InvalidSplit(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::LengthMismatch { rows, labels } => {
                write!(
                    f,
                    "feature matrix has {rows} rows but {labels} labels were supplied"
                )
            }
            MlError::RaggedRows {
                expected,
                found,
                row,
            } => {
                write!(
                    f,
                    "row {row} has {found} features but {expected} were expected"
                )
            }
            MlError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} is out of range for {n_classes} classes")
            }
            MlError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            MlError::InvalidParameter(p) => write!(f, "invalid hyper-parameter: {p}"),
            MlError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_numbers() {
        assert!(MlError::LengthMismatch { rows: 3, labels: 5 }
            .to_string()
            .contains('3'));
        assert!(MlError::RaggedRows {
            expected: 2,
            found: 4,
            row: 1
        }
        .to_string()
        .contains('4'));
        assert!(MlError::LabelOutOfRange {
            label: 9,
            n_classes: 3
        }
        .to_string()
        .contains('9'));
        assert!(!MlError::EmptyDataset.to_string().is_empty());
        assert!(MlError::InvalidParameter("n_estimators")
            .to_string()
            .contains("n_estimators"));
        assert!(MlError::InvalidSplit("too few samples".into())
            .to_string()
            .contains("too few"));
    }
}
