//! Executable analysis substrate: ELF64 parsing and construction, printable
//! string extraction (the `strings(1)` equivalent), and global-symbol
//! extraction (the `nm(1)` equivalent).
//!
//! The Fuzzy Hash Classifier paper extracts three views of each application
//! executable and fuzzy-hashes each of them:
//!
//! 1. the raw binary content of the file,
//! 2. the continuous printable characters (what `strings` prints), and
//! 3. the global text symbols from the symbol table (what `nm` prints).
//!
//! This crate provides both directions of that pipeline:
//!
//! * [`elf`] parses real ELF64 files ([`elf::ElfFile::parse`]) and *builds*
//!   them ([`elf::ElfBuilder`]), which the corpus generator uses to emit
//!   synthetic-but-valid application executables.
//! * [`strings`] extracts printable runs exactly like `strings -n 4`.
//! * [`symbols`] lists defined global symbols like `nm -g --defined-only`,
//!   including the single-letter symbol class (`T`, `D`, `B`, ...).
//!
//! # Quick start
//!
//! ```
//! use binary::elf::{ElfBuilder, ElfFile};
//! use binary::{strings, symbols};
//!
//! let mut builder = ElfBuilder::new();
//! builder.add_text_section(b"\x55\x48\x89\xe5\x90\xc3".repeat(64));
//! builder.add_rodata_section(b"OpenMalaria simulation engine v46.0\0".to_vec());
//! builder.add_global_function("run_simulation", 0x40, 64);
//! builder.add_global_function("parse_scenario", 0x80, 32);
//! let bytes = builder.build();
//!
//! let elf = ElfFile::parse(&bytes).expect("built ELF must parse");
//! let text = strings::extract_strings(&bytes, 4);
//! let syms = symbols::global_defined_symbols(&elf);
//!
//! assert!(text.iter().any(|s| s.contains("OpenMalaria")));
//! assert_eq!(syms.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elf;
pub mod error;
pub mod strings;
pub mod symbols;

pub use elf::{ElfBuilder, ElfFile};
pub use error::BinaryError;
