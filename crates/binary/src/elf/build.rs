//! Construction of synthetic-but-valid ELF64 executables.
//!
//! The corpus generator needs thousands of application executables with
//! controllable code bytes, embedded strings, and symbol tables. Rather than
//! mocking "a binary" with a bag of bytes, [`ElfBuilder`] assembles a real
//! ELF64 file — header, `.text` / `.rodata` / `.data` contents, `.symtab`,
//! `.strtab`, `.shstrtab`, and the section header table — so the very same
//! parser/`strings`/`nm` code paths that would run on production executables
//! run on the synthetic corpus.

use super::header::ElfHeader;
use super::section::Section;
use super::symbol::{Symbol, SymbolBinding, SymbolType};
use super::types::*;

/// Base virtual address sections are laid out from (matches the traditional
/// x86-64 non-PIE load address).
const BASE_VADDR: u64 = 0x40_0000;

/// Incrementally describes an executable, then assembles the file bytes.
#[derive(Debug, Clone, Default)]
pub struct ElfBuilder {
    text: Vec<u8>,
    rodata: Vec<u8>,
    data: Vec<u8>,
    comment: Vec<u8>,
    symbols: Vec<PendingSymbol>,
    file_type: Option<u16>,
}

#[derive(Debug, Clone)]
struct PendingSymbol {
    name: String,
    value: u64,
    size: u64,
    binding: SymbolBinding,
    sym_type: SymbolType,
    /// Which builder section the symbol belongs to.
    home: SymbolHome,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymbolHome {
    Text,
    Data,
    Undefined,
}

impl ElfBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the ELF file type (`ET_EXEC` by default; pass `ET_DYN` to emulate
    /// a position-independent executable).
    pub fn set_file_type(&mut self, e_type: u16) -> &mut Self {
        self.file_type = Some(e_type);
        self
    }

    /// Provide the contents of `.text` (machine-code bytes).
    pub fn add_text_section(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.text = bytes;
        self
    }

    /// Provide the contents of `.rodata` (read-only data: embedded strings,
    /// lookup tables, ...). This is the section `strings(1)` mostly reads.
    pub fn add_rodata_section(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.rodata = bytes;
        self
    }

    /// Provide the contents of `.data` (initialized writable data).
    pub fn add_data_section(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.data = bytes;
        self
    }

    /// Provide the contents of `.comment` (toolchain identification, e.g.
    /// "GCC: (GNU) 10.3.0"), which real compilers always emit and which lets
    /// the corpus model "same code, different compiler" version drift.
    pub fn add_comment_section(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.comment = bytes;
        self
    }

    /// Add a global function symbol at `offset` within `.text`.
    pub fn add_global_function(&mut self, name: &str, offset: u64, size: u64) -> &mut Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            value: offset,
            size,
            binding: SymbolBinding::Global,
            sym_type: SymbolType::Func,
            home: SymbolHome::Text,
        });
        self
    }

    /// Add a local (static) function symbol at `offset` within `.text`.
    pub fn add_local_function(&mut self, name: &str, offset: u64, size: u64) -> &mut Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            value: offset,
            size,
            binding: SymbolBinding::Local,
            sym_type: SymbolType::Func,
            home: SymbolHome::Text,
        });
        self
    }

    /// Add a global data-object symbol at `offset` within `.data`.
    pub fn add_global_object(&mut self, name: &str, offset: u64, size: u64) -> &mut Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            value: offset,
            size,
            binding: SymbolBinding::Global,
            sym_type: SymbolType::Object,
            home: SymbolHome::Data,
        });
        self
    }

    /// Add an undefined (imported) symbol, e.g. a libc function the
    /// executable calls.
    pub fn add_undefined_symbol(&mut self, name: &str) -> &mut Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            value: 0,
            size: 0,
            binding: SymbolBinding::Global,
            sym_type: SymbolType::NoType,
            home: SymbolHome::Undefined,
        });
        self
    }

    /// Number of symbols queued so far.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Assemble the file.
    ///
    /// Layout: ELF header, one `PT_LOAD` program header, section contents
    /// (`.text`, `.rodata`, `.data`, `.comment`, `.symtab`, `.strtab`,
    /// `.shstrtab`), then the section header table.
    pub fn build(&self) -> Vec<u8> {
        // --- String tables -------------------------------------------------
        // .strtab holds symbol names; .shstrtab holds section names.
        let mut strtab: Vec<u8> = vec![0];
        let mut sym_name_offsets: Vec<u32> = Vec::with_capacity(self.symbols.len());
        for sym in &self.symbols {
            sym_name_offsets.push(strtab.len() as u32);
            strtab.extend_from_slice(sym.name.as_bytes());
            strtab.push(0);
        }

        let section_names = [
            "",
            ".text",
            ".rodata",
            ".data",
            ".comment",
            ".symtab",
            ".strtab",
            ".shstrtab",
        ];
        let mut shstrtab: Vec<u8> = vec![0];
        let mut sec_name_offsets: Vec<u32> = Vec::with_capacity(section_names.len());
        for name in &section_names {
            if name.is_empty() {
                sec_name_offsets.push(0);
                continue;
            }
            sec_name_offsets.push(shstrtab.len() as u32);
            shstrtab.extend_from_slice(name.as_bytes());
            shstrtab.push(0);
        }

        // --- Section indices (fixed layout) --------------------------------
        const IDX_TEXT: u16 = 1;
        const IDX_DATA: u16 = 3;
        const IDX_SYMTAB: usize = 5;
        const IDX_STRTAB: usize = 6;
        const IDX_SHSTRTAB: usize = 7;
        let num_sections = section_names.len();

        // --- Symbol table bytes ---------------------------------------------
        // Entry 0 is the mandatory null symbol. Local symbols must precede
        // globals; sh_info is the index of the first non-local symbol.
        let mut ordered: Vec<(usize, &PendingSymbol)> = self.symbols.iter().enumerate().collect();
        ordered.sort_by_key(|(_, s)| match s.binding {
            SymbolBinding::Local => 0u8,
            _ => 1u8,
        });
        let first_global = 1 + ordered
            .iter()
            .filter(|(_, s)| s.binding == SymbolBinding::Local)
            .count() as u32;

        let mut symtab: Vec<u8> = vec![0; SYM_SIZE]; // null entry
        for (orig_idx, sym) in &ordered {
            let (shndx, vaddr_base) = match sym.home {
                SymbolHome::Text => (IDX_TEXT, BASE_VADDR + EHDR_SIZE as u64 + PHDR_SIZE as u64),
                SymbolHome::Data => (IDX_DATA, 0),
                SymbolHome::Undefined => (SHN_UNDEF, 0),
            };
            let entry = Symbol {
                name: sym.name.clone(),
                value: if sym.home == SymbolHome::Undefined {
                    0
                } else {
                    vaddr_base + sym.value
                },
                size: sym.size,
                binding: sym.binding,
                sym_type: sym.sym_type,
                shndx,
            };
            symtab.extend_from_slice(&entry.to_bytes(sym_name_offsets[*orig_idx]));
        }

        // --- File layout -----------------------------------------------------
        let phoff = EHDR_SIZE;
        let contents_start = EHDR_SIZE + PHDR_SIZE;
        let section_payloads: [&[u8]; 7] = [
            &self.text,
            &self.rodata,
            &self.data,
            &self.comment,
            &symtab,
            &strtab,
            &shstrtab,
        ];
        let mut offsets = [0usize; 7];
        let mut cursor = contents_start;
        for (i, payload) in section_payloads.iter().enumerate() {
            // Align each section to 8 bytes to keep readers happy.
            cursor = (cursor + 7) & !7;
            offsets[i] = cursor;
            cursor += payload.len();
        }
        let shoff = (cursor + 7) & !7;

        // --- Section headers --------------------------------------------------
        let make_section = |idx: usize,
                            sh_type: u32,
                            flags: u64,
                            addr: u64,
                            link: u32,
                            info: u32,
                            entsize: u64| Section {
            name: section_names[idx].to_string(),
            name_offset: sec_name_offsets[idx],
            sh_type,
            flags,
            addr,
            offset: if idx == 0 { 0 } else { offsets[idx - 1] as u64 },
            size: if idx == 0 {
                0
            } else {
                section_payloads[idx - 1].len() as u64
            },
            link,
            info,
            addralign: if idx == 0 { 0 } else { 8 },
            entsize,
            data: Vec::new(),
        };

        let text_vaddr = BASE_VADDR + contents_start as u64;
        let sections = [
            make_section(0, SHT_NULL, 0, 0, 0, 0, 0),
            make_section(
                1,
                SHT_PROGBITS,
                SHF_ALLOC | SHF_EXECINSTR,
                text_vaddr,
                0,
                0,
                0,
            ),
            make_section(
                2,
                SHT_PROGBITS,
                SHF_ALLOC,
                BASE_VADDR + offsets[1] as u64,
                0,
                0,
                0,
            ),
            make_section(
                3,
                SHT_PROGBITS,
                SHF_ALLOC | SHF_WRITE,
                BASE_VADDR + offsets[2] as u64,
                0,
                0,
                0,
            ),
            make_section(4, SHT_PROGBITS, 0, 0, 0, 0, 0),
            make_section(
                IDX_SYMTAB,
                SHT_SYMTAB,
                0,
                0,
                IDX_STRTAB as u32,
                first_global,
                SYM_SIZE as u64,
            ),
            make_section(IDX_STRTAB, SHT_STRTAB, 0, 0, 0, 0, 0),
            make_section(IDX_SHSTRTAB, SHT_STRTAB, 0, 0, 0, 0, 0),
        ];

        // --- Header ------------------------------------------------------------
        let header = ElfHeader {
            e_type: self.file_type.unwrap_or(ET_EXEC),
            e_machine: EM_X86_64,
            e_entry: text_vaddr,
            e_phoff: phoff as u64,
            e_shoff: shoff as u64,
            e_flags: 0,
            e_phnum: 1,
            e_shnum: num_sections as u16,
            e_shstrndx: IDX_SHSTRTAB as u16,
        };

        // --- Assemble -----------------------------------------------------------
        let total = shoff + num_sections * SHDR_SIZE;
        let mut out = vec![0u8; total];
        out[..EHDR_SIZE].copy_from_slice(&header.to_bytes());
        out[phoff..phoff + PHDR_SIZE].copy_from_slice(&self.program_header(cursor as u64));
        for (i, payload) in section_payloads.iter().enumerate() {
            out[offsets[i]..offsets[i] + payload.len()].copy_from_slice(payload);
        }
        for (i, sec) in sections.iter().enumerate() {
            let off = shoff + i * SHDR_SIZE;
            out[off..off + SHDR_SIZE].copy_from_slice(&sec.header_bytes());
        }
        out
    }

    /// A single `PT_LOAD` program header mapping the whole file.
    fn program_header(&self, file_size: u64) -> [u8; PHDR_SIZE] {
        const PT_LOAD: u32 = 1;
        const PF_R: u32 = 4;
        const PF_X: u32 = 1;
        let mut out = [0u8; PHDR_SIZE];
        out[0..4].copy_from_slice(&PT_LOAD.to_le_bytes());
        out[4..8].copy_from_slice(&(PF_R | PF_X).to_le_bytes());
        out[8..16].copy_from_slice(&0u64.to_le_bytes()); // p_offset
        out[16..24].copy_from_slice(&BASE_VADDR.to_le_bytes()); // p_vaddr
        out[24..32].copy_from_slice(&BASE_VADDR.to_le_bytes()); // p_paddr
        out[32..40].copy_from_slice(&file_size.to_le_bytes()); // p_filesz
        out[40..48].copy_from_slice(&file_size.to_le_bytes()); // p_memsz
        out[48..56].copy_from_slice(&0x1000u64.to_le_bytes()); // p_align
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::parse::ElfFile;

    #[test]
    fn empty_builder_still_produces_valid_elf() {
        let bytes = ElfBuilder::new().build();
        let elf = ElfFile::parse(&bytes).unwrap();
        assert_eq!(elf.sections().len(), 8);
        assert_eq!(elf.symbols().len(), 1); // just the null symbol
    }

    #[test]
    fn sections_carry_their_contents() {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0xAB; 100]);
        b.add_rodata_section(b"read only".to_vec());
        b.add_data_section(vec![9; 33]);
        b.add_comment_section(b"GCC: (GNU) 12.2.0\0".to_vec());
        let elf = ElfFile::parse(&b.build()).unwrap();
        assert_eq!(elf.section_by_name(".text").unwrap().data, vec![0xAB; 100]);
        assert_eq!(elf.section_by_name(".rodata").unwrap().data, b"read only");
        assert_eq!(elf.section_by_name(".data").unwrap().data.len(), 33);
        assert!(
            String::from_utf8_lossy(&elf.section_by_name(".comment").unwrap().data).contains("GCC")
        );
    }

    #[test]
    fn locals_precede_globals_in_symtab() {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 64]);
        b.add_global_function("gfun", 0, 8);
        b.add_local_function("lfun", 8, 8);
        b.add_global_object("gobj", 0, 4);
        let elf = ElfFile::parse(&b.build()).unwrap();
        let syms = elf.symbols();
        // null, then locals, then globals
        assert_eq!(syms[0].name, "");
        assert_eq!(syms[1].name, "lfun");
        assert!(syms[2].is_global());
        assert!(syms[3].is_global());
    }

    #[test]
    fn undefined_symbols_have_shn_undef() {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0xC3; 8]);
        b.add_undefined_symbol("MPI_Init");
        let elf = ElfFile::parse(&b.build()).unwrap();
        let mpi = elf.symbols().iter().find(|s| s.name == "MPI_Init").unwrap();
        assert!(!mpi.is_defined());
    }

    #[test]
    fn file_type_can_be_pie() {
        let mut b = ElfBuilder::new();
        b.set_file_type(ET_DYN);
        b.add_text_section(vec![0x90; 16]);
        let elf = ElfFile::parse(&b.build()).unwrap();
        assert_eq!(elf.header().e_type, ET_DYN);
        assert!(elf.header().is_executable_like());
    }

    #[test]
    fn deterministic_output() {
        let mut b = ElfBuilder::new();
        b.add_text_section((0..255u8).collect());
        b.add_global_function("f", 0, 16);
        assert_eq!(b.build(), b.build());
    }

    #[test]
    fn symbol_count_reflects_additions() {
        let mut b = ElfBuilder::new();
        assert_eq!(b.symbol_count(), 0);
        b.add_global_function("a", 0, 1);
        b.add_undefined_symbol("b");
        assert_eq!(b.symbol_count(), 2);
    }

    #[test]
    fn text_symbols_point_into_executable_section() {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 128]);
        b.add_global_function("kernel_main", 0x20, 32);
        let elf = ElfFile::parse(&b.build()).unwrap();
        let sym = elf
            .symbols()
            .iter()
            .find(|s| s.name == "kernel_main")
            .unwrap();
        assert!(elf.section_is_executable(sym.shndx));
    }
}
