//! Whole-file ELF parsing: [`ElfFile`].

use super::header::ElfHeader;
use super::section::{string_at, Section};
use super::symbol::Symbol;
use super::types::*;
use crate::error::BinaryError;

/// A parsed ELF64 file: header, named sections, and symbol tables.
#[derive(Debug, Clone)]
pub struct ElfFile {
    header: ElfHeader,
    sections: Vec<Section>,
    symbols: Vec<Symbol>,
    dynamic_symbols: Vec<Symbol>,
}

impl ElfFile {
    /// Parse an ELF64 little-endian file from `data`.
    ///
    /// Section contents are copied out of `data` so the returned value owns
    /// everything it needs.
    pub fn parse(data: &[u8]) -> Result<Self, BinaryError> {
        let header = ElfHeader::parse(data)?;

        let mut sections = Vec::with_capacity(header.e_shnum as usize);
        for i in 0..header.e_shnum as usize {
            let off = header.e_shoff as usize + i * SHDR_SIZE;
            sections.push(Section::parse(data, off, i)?);
        }

        // Resolve section names through the section-header string table.
        if header.e_shnum > 0 {
            let idx = header.e_shstrndx as usize;
            if idx >= sections.len() {
                return Err(BinaryError::BadShStrNdx(header.e_shstrndx));
            }
            let shstrtab = sections[idx].data.clone();
            for sec in &mut sections {
                sec.name = string_at(&shstrtab, sec.name_offset as usize).unwrap_or_default();
            }
        }

        let symbols = Self::load_symbols(&sections, SHT_SYMTAB)?;
        let dynamic_symbols = Self::load_symbols(&sections, SHT_DYNSYM)?;

        Ok(Self {
            header,
            sections,
            symbols,
            dynamic_symbols,
        })
    }

    fn load_symbols(sections: &[Section], table_type: u32) -> Result<Vec<Symbol>, BinaryError> {
        let mut out = Vec::new();
        for sec in sections.iter().filter(|s| s.sh_type == table_type) {
            if sec.entsize != 0 && sec.entsize != SYM_SIZE as u64 {
                return Err(BinaryError::BadSymbolEntrySize(sec.entsize));
            }
            let strtab = sections
                .get(sec.link as usize)
                .map(|s| s.data.as_slice())
                .unwrap_or(&[]);
            let count = sec.data.len() / SYM_SIZE;
            for i in 0..count {
                out.push(Symbol::parse(&sec.data, i * SYM_SIZE, strtab)?);
            }
        }
        Ok(out)
    }

    /// The parsed file header.
    pub fn header(&self) -> &ElfHeader {
        &self.header
    }

    /// All sections, in header-table order (index 0 is the null section).
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Find a section by exact name.
    pub fn section_by_name(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Symbols from `.symtab` (empty for stripped binaries).
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Symbols from `.dynsym`.
    pub fn dynamic_symbols(&self) -> &[Symbol] {
        &self.dynamic_symbols
    }

    /// Whether the file still carries a static symbol table. The paper's
    /// approach requires an intact symbol table; stripped binaries are
    /// excluded from the dataset (Section 3, Data Collection).
    pub fn has_symbol_table(&self) -> bool {
        !self.symbols.is_empty()
    }

    /// Whether the given section index refers to an executable section.
    pub fn section_is_executable(&self, index: u16) -> bool {
        usize::from(index) < self.sections.len()
            && self.sections[usize::from(index)].is_executable()
    }

    /// Total size of all section contents (a size sanity metric used in
    /// corpus statistics).
    pub fn total_section_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::build::ElfBuilder;

    fn sample_elf() -> Vec<u8> {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 256]);
        b.add_rodata_section(b"hello world strings content\0".to_vec());
        b.add_data_section(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        b.add_global_function("main_loop", 0x10, 64);
        b.add_global_function("init_solver", 0x50, 32);
        b.add_global_object("solver_config", 0x0, 8);
        b.add_local_function("helper_internal", 0x90, 16);
        b.build()
    }

    #[test]
    fn parse_built_elf() {
        let bytes = sample_elf();
        let elf = ElfFile::parse(&bytes).unwrap();
        assert!(elf.header().is_executable_like());
        assert!(elf.section_by_name(".text").is_some());
        assert!(elf.section_by_name(".rodata").is_some());
        assert!(elf.section_by_name(".symtab").is_some());
        assert!(elf.has_symbol_table());
        // 1 null symbol + 4 added symbols
        assert_eq!(elf.symbols().len(), 5);
    }

    #[test]
    fn section_names_resolved() {
        let elf = ElfFile::parse(&sample_elf()).unwrap();
        let names: Vec<&str> = elf.sections().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&".text"));
        assert!(names.contains(&".shstrtab"));
        assert!(names.contains(&".strtab"));
    }

    #[test]
    fn symbol_contents_roundtrip() {
        let elf = ElfFile::parse(&sample_elf()).unwrap();
        let main_loop = elf
            .symbols()
            .iter()
            .find(|s| s.name == "main_loop")
            .unwrap();
        assert!(main_loop.is_global());
        assert!(main_loop.is_defined());
        assert_eq!(main_loop.size, 64);
        let helper = elf
            .symbols()
            .iter()
            .find(|s| s.name == "helper_internal")
            .unwrap();
        assert!(!helper.is_global());
    }

    #[test]
    fn rejects_truncated_file() {
        let bytes = sample_elf();
        assert!(ElfFile::parse(&bytes[..40]).is_err());
        // Cutting into the section header table must also fail cleanly.
        assert!(ElfFile::parse(&bytes[..bytes.len() - 10]).is_err());
    }

    #[test]
    fn rejects_non_elf() {
        assert_eq!(
            ElfFile::parse(b"#!/bin/bash\necho hi\n").unwrap_err(),
            BinaryError::BadMagic
        );
    }

    #[test]
    fn empty_symbols_when_none_added() {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0xC3; 16]);
        let elf = ElfFile::parse(&b.build()).unwrap();
        // Only the null symbol entry exists.
        assert_eq!(elf.symbols().len(), 1);
    }

    #[test]
    fn total_section_bytes_counts_contents() {
        let elf = ElfFile::parse(&sample_elf()).unwrap();
        assert!(elf.total_section_bytes() >= 256 + 29 + 8);
    }

    #[test]
    fn section_is_executable_by_index() {
        let elf = ElfFile::parse(&sample_elf()).unwrap();
        let text_idx = elf
            .sections()
            .iter()
            .position(|s| s.name == ".text")
            .unwrap() as u16;
        assert!(elf.section_is_executable(text_idx));
        assert!(!elf.section_is_executable(0));
        assert!(!elf.section_is_executable(999));
    }
}
