//! ELF64 (little-endian) parsing and construction.
//!
//! Only the subset of the ELF format the classification pipeline needs is
//! implemented, but that subset is implemented for real: file header, section
//! header table, string tables, and symbol tables are parsed from and written
//! to the actual on-disk layout, so binaries produced by [`ElfBuilder`] are
//! accepted by the parser (and by external tools such as `readelf`).
//!
//! Submodules:
//!
//! * [`types`] — constants and typed enums for the fields we interpret.
//! * [`header`] — the 64-byte ELF file header.
//! * [`section`] — section headers and loaded section contents.
//! * [`symbol`] — symbol table entries.
//! * [`parse`] — [`ElfFile`], the parsed view of a byte buffer.
//! * [`build`] — [`ElfBuilder`], which assembles synthetic executables.
//! * [`strip`] — removal of symbol-table sections (what `strip(1)` does),
//!   used to model the paper's "stripped binaries" limitation.

pub mod build;
pub mod header;
pub mod parse;
pub mod section;
pub mod strip;
pub mod symbol;
pub mod types;

pub use build::ElfBuilder;
pub use header::ElfHeader;
pub use parse::ElfFile;
pub use section::Section;
pub use strip::strip_symbols;
pub use symbol::{Symbol, SymbolBinding, SymbolType};
