//! Symbol table entries.

use super::types::*;
use crate::error::BinaryError;

/// Binding of a symbol (who can see it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolBinding {
    /// Visible only within the defining object file.
    Local,
    /// Visible to all object files being combined.
    Global,
    /// Like global but with lower link precedence.
    Weak,
    /// Any other (OS/processor specific) binding value.
    Other(u8),
}

impl SymbolBinding {
    /// Decode from the high nibble of `st_info`.
    pub fn from_st_info(info: u8) -> Self {
        match info >> 4 {
            STB_LOCAL => SymbolBinding::Local,
            STB_GLOBAL => SymbolBinding::Global,
            STB_WEAK => SymbolBinding::Weak,
            other => SymbolBinding::Other(other),
        }
    }

    /// Encode to the high nibble of `st_info`.
    pub fn to_bits(self) -> u8 {
        match self {
            SymbolBinding::Local => STB_LOCAL,
            SymbolBinding::Global => STB_GLOBAL,
            SymbolBinding::Weak => STB_WEAK,
            SymbolBinding::Other(v) => v,
        }
    }
}

/// Type of entity a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolType {
    /// No type recorded.
    NoType,
    /// A data object (variable, array, ...).
    Object,
    /// A function or other executable code.
    Func,
    /// The symbol refers to a section.
    Section,
    /// The source file name.
    File,
    /// Any other type value.
    Other(u8),
}

impl SymbolType {
    /// Decode from the low nibble of `st_info`.
    pub fn from_st_info(info: u8) -> Self {
        match info & 0x0F {
            STT_NOTYPE => SymbolType::NoType,
            STT_OBJECT => SymbolType::Object,
            STT_FUNC => SymbolType::Func,
            STT_SECTION => SymbolType::Section,
            STT_FILE => SymbolType::File,
            other => SymbolType::Other(other),
        }
    }

    /// Encode to the low nibble of `st_info`.
    pub fn to_bits(self) -> u8 {
        match self {
            SymbolType::NoType => STT_NOTYPE,
            SymbolType::Object => STT_OBJECT,
            SymbolType::Func => STT_FUNC,
            SymbolType::Section => STT_SECTION,
            SymbolType::File => STT_FILE,
            SymbolType::Other(v) => v,
        }
    }
}

/// One parsed symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name resolved through the linked string table.
    pub name: String,
    /// Symbol value (usually a virtual address).
    pub value: u64,
    /// Size in bytes (0 if unknown).
    pub size: u64,
    /// Binding (local / global / weak).
    pub binding: SymbolBinding,
    /// Type (function / object / ...).
    pub sym_type: SymbolType,
    /// Index of the section this symbol is defined in (`SHN_UNDEF` if
    /// undefined, `SHN_ABS` for absolute values).
    pub shndx: u16,
}

impl Symbol {
    /// Whether the symbol is defined in this file (not an undefined import).
    pub fn is_defined(&self) -> bool {
        self.shndx != SHN_UNDEF
    }

    /// Whether the symbol has global binding.
    pub fn is_global(&self) -> bool {
        self.binding == SymbolBinding::Global
    }

    /// Parse one 24-byte ELF64 symbol entry at `offset` of `symtab_data`,
    /// resolving the name in `strtab`.
    pub fn parse(symtab_data: &[u8], offset: usize, strtab: &[u8]) -> Result<Self, BinaryError> {
        if symtab_data.len() < offset + SYM_SIZE {
            return Err(BinaryError::Truncated {
                context: "symbol entry",
                needed: offset + SYM_SIZE,
                available: symtab_data.len(),
            });
        }
        let name_off = read_u32(symtab_data, offset) as usize;
        let info = symtab_data[offset + 4];
        let shndx = read_u16(symtab_data, offset + 6);
        let value = read_u64(symtab_data, offset + 8);
        let size = read_u64(symtab_data, offset + 16);
        let name = super::section::string_at(strtab, name_off).unwrap_or_default();
        Ok(Self {
            name,
            value,
            size,
            binding: SymbolBinding::from_st_info(info),
            sym_type: SymbolType::from_st_info(info),
            shndx,
        })
    }

    /// Serialize to the 24-byte on-disk form given the offset of the name in
    /// the string table.
    pub fn to_bytes(&self, name_offset: u32) -> [u8; SYM_SIZE] {
        let mut out = [0u8; SYM_SIZE];
        out[0..4].copy_from_slice(&name_offset.to_le_bytes());
        out[4] = (self.binding.to_bits() << 4) | self.sym_type.to_bits();
        out[5] = 0; // st_other: default visibility
        out[6..8].copy_from_slice(&self.shndx.to_le_bytes());
        out[8..16].copy_from_slice(&self.value.to_le_bytes());
        out[16..24].copy_from_slice(&self.size.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_roundtrip() {
        for b in [
            SymbolBinding::Local,
            SymbolBinding::Global,
            SymbolBinding::Weak,
            SymbolBinding::Other(10),
        ] {
            assert_eq!(SymbolBinding::from_st_info(b.to_bits() << 4), b);
        }
    }

    #[test]
    fn type_roundtrip() {
        for t in [
            SymbolType::NoType,
            SymbolType::Object,
            SymbolType::Func,
            SymbolType::Section,
            SymbolType::File,
            SymbolType::Other(13),
        ] {
            assert_eq!(SymbolType::from_st_info(t.to_bits()), t);
        }
    }

    #[test]
    fn symbol_roundtrip() {
        let strtab = b"\0compute_forces\0";
        let sym = Symbol {
            name: "compute_forces".to_string(),
            value: 0x40_2000,
            size: 128,
            binding: SymbolBinding::Global,
            sym_type: SymbolType::Func,
            shndx: 2,
        };
        let bytes = sym.to_bytes(1);
        let parsed = Symbol::parse(&bytes, 0, strtab).unwrap();
        assert_eq!(parsed, sym);
        assert!(parsed.is_defined());
        assert!(parsed.is_global());
    }

    #[test]
    fn undefined_symbol_detected() {
        let sym = Symbol {
            name: "malloc".to_string(),
            value: 0,
            size: 0,
            binding: SymbolBinding::Global,
            sym_type: SymbolType::NoType,
            shndx: SHN_UNDEF,
        };
        assert!(!sym.is_defined());
    }

    #[test]
    fn truncated_symbol_rejected() {
        assert!(matches!(
            Symbol::parse(&[0u8; 10], 0, b"\0"),
            Err(BinaryError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_name_offset_yields_empty_name() {
        let sym = Symbol {
            name: String::new(),
            value: 0,
            size: 0,
            binding: SymbolBinding::Local,
            sym_type: SymbolType::NoType,
            shndx: 1,
        };
        let bytes = sym.to_bytes(999);
        let parsed = Symbol::parse(&bytes, 0, b"\0short\0").unwrap();
        assert_eq!(parsed.name, "");
    }
}
