//! Symbol stripping.
//!
//! The paper notes (Section 5, Limitations) that its approach "does not work
//! with executables that have been stripped of the symbol table". To exercise
//! that limitation in tests and experiments we need a way to produce the
//! stripped variant of a built executable. [`strip_symbols`] re-parses the
//! input and rebuilds it without `.symtab`/`.strtab`, which mirrors what
//! `strip(1)` does to the classifier-relevant structure of the file.

use super::build::ElfBuilder;
use super::parse::ElfFile;
use crate::error::BinaryError;

/// Return a copy of `data` with the static symbol table removed.
///
/// The `.text`, `.rodata`, `.data`, and `.comment` contents are preserved
/// byte-for-byte, so the raw-content and strings views of the file stay
/// intact while the symbols view becomes empty — exactly the situation the
/// paper describes for stripped binaries.
pub fn strip_symbols(data: &[u8]) -> Result<Vec<u8>, BinaryError> {
    let elf = ElfFile::parse(data)?;
    let mut builder = ElfBuilder::new();
    builder.set_file_type(elf.header().e_type);
    if let Some(text) = elf.section_by_name(".text") {
        builder.add_text_section(text.data.clone());
    }
    if let Some(rodata) = elf.section_by_name(".rodata") {
        builder.add_rodata_section(rodata.data.clone());
    }
    if let Some(d) = elf.section_by_name(".data") {
        builder.add_data_section(d.data.clone());
    }
    if let Some(c) = elf.section_by_name(".comment") {
        builder.add_comment_section(c.data.clone());
    }
    // No symbols are added: the rebuilt file's .symtab holds only the null
    // entry, which ElfFile::has_symbol_table / the feature extractor treat as
    // "no usable symbols".
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::build::ElfBuilder;
    use crate::symbols::global_defined_symbols;

    fn sample() -> Vec<u8> {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x48; 512]);
        b.add_rodata_section(b"simulation parameters v2.1\0".to_vec());
        b.add_global_function("integrate_step", 0, 128);
        b.add_global_function("write_output", 128, 64);
        b.build()
    }

    #[test]
    fn stripping_removes_symbols_keeps_contents() {
        let original = sample();
        let stripped = strip_symbols(&original).unwrap();
        let before = ElfFile::parse(&original).unwrap();
        let after = ElfFile::parse(&stripped).unwrap();

        assert_eq!(global_defined_symbols(&before).len(), 2);
        assert!(global_defined_symbols(&after).is_empty());
        assert_eq!(
            before.section_by_name(".text").unwrap().data,
            after.section_by_name(".text").unwrap().data
        );
        assert_eq!(
            before.section_by_name(".rodata").unwrap().data,
            after.section_by_name(".rodata").unwrap().data
        );
    }

    #[test]
    fn stripping_invalid_input_errors() {
        assert!(strip_symbols(b"not an elf").is_err());
    }

    #[test]
    fn stripping_is_idempotent() {
        let once = strip_symbols(&sample()).unwrap();
        let twice = strip_symbols(&once).unwrap();
        let a = ElfFile::parse(&once).unwrap();
        let b = ElfFile::parse(&twice).unwrap();
        assert_eq!(
            a.section_by_name(".text").unwrap().data,
            b.section_by_name(".text").unwrap().data
        );
        assert!(global_defined_symbols(&b).is_empty());
    }
}
