//! The ELF64 file header.

use super::types::*;
use crate::error::BinaryError;

/// Parsed ELF64 file header (only the fields the pipeline interprets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfHeader {
    /// Object file type (`ET_EXEC`, `ET_DYN`, ...).
    pub e_type: u16,
    /// Target machine (`EM_X86_64`, ...).
    pub e_machine: u16,
    /// Entry point virtual address.
    pub e_entry: u64,
    /// Program header table offset.
    pub e_phoff: u64,
    /// Section header table offset.
    pub e_shoff: u64,
    /// Processor-specific flags.
    pub e_flags: u32,
    /// Number of program headers.
    pub e_phnum: u16,
    /// Number of section headers.
    pub e_shnum: u16,
    /// Index of the section-header string table.
    pub e_shstrndx: u16,
}

impl ElfHeader {
    /// Parse the 64-byte header from the start of `data`.
    pub fn parse(data: &[u8]) -> Result<Self, BinaryError> {
        // Report a wrong-magic file as BadMagic even when it is also shorter
        // than a full header (e.g. a small shell script), since that is the
        // more actionable diagnosis.
        if data.len() >= 4 && data[0..4] != ELF_MAGIC {
            return Err(BinaryError::BadMagic);
        }
        if data.len() < EHDR_SIZE {
            return Err(BinaryError::Truncated {
                context: "ELF header",
                needed: EHDR_SIZE,
                available: data.len(),
            });
        }
        if data[0..4] != ELF_MAGIC {
            return Err(BinaryError::BadMagic);
        }
        if data[4] != ELFCLASS64 {
            return Err(BinaryError::UnsupportedClass(data[4]));
        }
        if data[5] != ELFDATA2LSB {
            return Err(BinaryError::UnsupportedEndianness(data[5]));
        }
        if data[6] != EV_CURRENT {
            return Err(BinaryError::UnsupportedVersion(data[6]));
        }
        Ok(Self {
            e_type: read_u16(data, 16),
            e_machine: read_u16(data, 18),
            e_entry: read_u64(data, 24),
            e_phoff: read_u64(data, 32),
            e_shoff: read_u64(data, 40),
            e_flags: read_u32(data, 48),
            e_phnum: read_u16(data, 56),
            e_shnum: read_u16(data, 60),
            e_shstrndx: read_u16(data, 62),
        })
    }

    /// Serialize the header to its 64-byte on-disk form.
    pub fn to_bytes(&self) -> [u8; EHDR_SIZE] {
        let mut out = [0u8; EHDR_SIZE];
        out[0..4].copy_from_slice(&ELF_MAGIC);
        out[4] = ELFCLASS64;
        out[5] = ELFDATA2LSB;
        out[6] = EV_CURRENT;
        out[7] = ELFOSABI_SYSV;
        // bytes 8..16 (ABI version + padding) stay zero
        out[16..18].copy_from_slice(&self.e_type.to_le_bytes());
        out[18..20].copy_from_slice(&self.e_machine.to_le_bytes());
        out[20..24].copy_from_slice(&1u32.to_le_bytes()); // e_version
        out[24..32].copy_from_slice(&self.e_entry.to_le_bytes());
        out[32..40].copy_from_slice(&self.e_phoff.to_le_bytes());
        out[40..48].copy_from_slice(&self.e_shoff.to_le_bytes());
        out[48..52].copy_from_slice(&self.e_flags.to_le_bytes());
        out[52..54].copy_from_slice(&(EHDR_SIZE as u16).to_le_bytes()); // e_ehsize
        out[54..56].copy_from_slice(&(PHDR_SIZE as u16).to_le_bytes()); // e_phentsize
        out[56..58].copy_from_slice(&self.e_phnum.to_le_bytes());
        out[58..60].copy_from_slice(&(SHDR_SIZE as u16).to_le_bytes()); // e_shentsize
        out[60..62].copy_from_slice(&self.e_shnum.to_le_bytes());
        out[62..64].copy_from_slice(&self.e_shstrndx.to_le_bytes());
        out
    }

    /// Whether this header describes an executable or shared-object file
    /// (the two forms application executables take in practice).
    pub fn is_executable_like(&self) -> bool {
        self.e_type == ET_EXEC || self.e_type == ET_DYN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElfHeader {
        ElfHeader {
            e_type: ET_EXEC,
            e_machine: EM_X86_64,
            e_entry: 0x40_1000,
            e_phoff: 64,
            e_shoff: 4096,
            e_flags: 0,
            e_phnum: 1,
            e_shnum: 7,
            e_shstrndx: 6,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.to_bytes();
        let parsed = ElfHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn rejects_short_input() {
        // Starts with the correct magic but is cut off mid-header.
        let err = ElfHeader::parse(&sample().to_bytes()[..10]).unwrap_err();
        assert!(matches!(err, BinaryError::Truncated { .. }));
        // A short blob with the wrong magic is diagnosed as BadMagic instead.
        assert_eq!(
            ElfHeader::parse(&[0u8; 10]).unwrap_err(),
            BinaryError::BadMagic
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x00;
        assert_eq!(ElfHeader::parse(&bytes).unwrap_err(), BinaryError::BadMagic);
    }

    #[test]
    fn rejects_32bit_class() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 1;
        assert_eq!(
            ElfHeader::parse(&bytes).unwrap_err(),
            BinaryError::UnsupportedClass(1)
        );
    }

    #[test]
    fn rejects_big_endian() {
        let mut bytes = sample().to_bytes();
        bytes[5] = 2;
        assert_eq!(
            ElfHeader::parse(&bytes).unwrap_err(),
            BinaryError::UnsupportedEndianness(2)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().to_bytes();
        bytes[6] = 0;
        assert_eq!(
            ElfHeader::parse(&bytes).unwrap_err(),
            BinaryError::UnsupportedVersion(0)
        );
    }

    #[test]
    fn executable_like_detection() {
        let mut h = sample();
        assert!(h.is_executable_like());
        h.e_type = ET_DYN;
        assert!(h.is_executable_like());
        h.e_type = 1; // ET_REL
        assert!(!h.is_executable_like());
    }
}
