//! ELF constants and small helpers for reading little-endian fields.

/// The four ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];
/// 64-bit class.
pub const ELFCLASS64: u8 = 2;
/// Little-endian data encoding.
pub const ELFDATA2LSB: u8 = 1;
/// Current ELF version.
pub const EV_CURRENT: u8 = 1;
/// System V ABI.
pub const ELFOSABI_SYSV: u8 = 0;

/// Executable file type.
pub const ET_EXEC: u16 = 2;
/// Shared object / position-independent executable type.
pub const ET_DYN: u16 = 3;
/// x86-64 machine type.
pub const EM_X86_64: u16 = 62;

/// Size of the ELF64 file header.
pub const EHDR_SIZE: usize = 64;
/// Size of one ELF64 section header.
pub const SHDR_SIZE: usize = 64;
/// Size of one ELF64 program header.
pub const PHDR_SIZE: usize = 56;
/// Size of one ELF64 symbol entry.
pub const SYM_SIZE: usize = 24;

/// Section type: inactive.
pub const SHT_NULL: u32 = 0;
/// Section type: program-defined contents.
pub const SHT_PROGBITS: u32 = 1;
/// Section type: symbol table.
pub const SHT_SYMTAB: u32 = 2;
/// Section type: string table.
pub const SHT_STRTAB: u32 = 3;
/// Section type: uninitialized data.
pub const SHT_NOBITS: u32 = 8;
/// Section type: dynamic symbol table.
pub const SHT_DYNSYM: u32 = 11;

/// Section flag: occupies memory at run time.
pub const SHF_ALLOC: u64 = 0x2;
/// Section flag: executable machine instructions.
pub const SHF_EXECINSTR: u64 = 0x4;
/// Section flag: writable data.
pub const SHF_WRITE: u64 = 0x1;

/// Symbol binding: local.
pub const STB_LOCAL: u8 = 0;
/// Symbol binding: global.
pub const STB_GLOBAL: u8 = 1;
/// Symbol binding: weak.
pub const STB_WEAK: u8 = 2;

/// Symbol type: unspecified.
pub const STT_NOTYPE: u8 = 0;
/// Symbol type: data object.
pub const STT_OBJECT: u8 = 1;
/// Symbol type: function.
pub const STT_FUNC: u8 = 2;
/// Symbol type: section.
pub const STT_SECTION: u8 = 3;
/// Symbol type: file name.
pub const STT_FILE: u8 = 4;

/// Special section index: undefined.
pub const SHN_UNDEF: u16 = 0;
/// Special section index: absolute value.
pub const SHN_ABS: u16 = 0xFFF1;

/// Read a `u16` at `offset` (little-endian). Caller guarantees bounds.
#[inline]
pub fn read_u16(data: &[u8], offset: usize) -> u16 {
    u16::from_le_bytes([data[offset], data[offset + 1]])
}

/// Read a `u32` at `offset` (little-endian). Caller guarantees bounds.
#[inline]
pub fn read_u32(data: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

/// Read a `u64` at `offset` (little-endian). Caller guarantees bounds.
#[inline]
pub fn read_u64(data: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[offset..offset + 8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_are_little_endian() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        assert_eq!(read_u16(&data, 0), 0x0201);
        assert_eq!(read_u32(&data, 0), 0x0403_0201);
        assert_eq!(read_u64(&data, 1), 0x0908_0706_0504_0302);
    }

    #[test]
    fn structure_sizes_match_spec() {
        assert_eq!(EHDR_SIZE, 64);
        assert_eq!(SHDR_SIZE, 64);
        assert_eq!(SYM_SIZE, 24);
        assert_eq!(PHDR_SIZE, 56);
    }

    #[test]
    fn magic_is_7f_elf() {
        assert_eq!(&ELF_MAGIC, b"\x7fELF");
    }
}
