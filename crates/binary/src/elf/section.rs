//! Section headers and loaded section contents.

use super::types::*;
use crate::error::BinaryError;

/// A section header plus (for sections that occupy file space) its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name resolved through the section-header string table.
    pub name: String,
    /// Raw offset of the name within `.shstrtab`.
    pub name_offset: u32,
    /// Section type (`SHT_PROGBITS`, `SHT_SYMTAB`, ...).
    pub sh_type: u32,
    /// Section flags (`SHF_ALLOC | SHF_EXECINSTR`, ...).
    pub flags: u64,
    /// Virtual address at execution.
    pub addr: u64,
    /// Offset of the section contents in the file.
    pub offset: u64,
    /// Size of the section contents in bytes.
    pub size: u64,
    /// Section-dependent link field (e.g. the string table of a symtab).
    pub link: u32,
    /// Section-dependent info field.
    pub info: u32,
    /// Alignment constraint.
    pub addralign: u64,
    /// Entry size for table-like sections.
    pub entsize: u64,
    /// The section's bytes (empty for `SHT_NOBITS` and the null section).
    pub data: Vec<u8>,
}

impl Section {
    /// Parse the section header at `shdr_offset` and load its contents from
    /// `file`. `index` is used for error reporting.
    pub fn parse(file: &[u8], shdr_offset: usize, index: usize) -> Result<Self, BinaryError> {
        if file.len() < shdr_offset + SHDR_SIZE {
            return Err(BinaryError::Truncated {
                context: "section header",
                needed: shdr_offset + SHDR_SIZE,
                available: file.len(),
            });
        }
        let name_offset = read_u32(file, shdr_offset);
        let sh_type = read_u32(file, shdr_offset + 4);
        let flags = read_u64(file, shdr_offset + 8);
        let addr = read_u64(file, shdr_offset + 16);
        let offset = read_u64(file, shdr_offset + 24);
        let size = read_u64(file, shdr_offset + 32);
        let link = read_u32(file, shdr_offset + 40);
        let info = read_u32(file, shdr_offset + 44);
        let addralign = read_u64(file, shdr_offset + 48);
        let entsize = read_u64(file, shdr_offset + 56);

        let data = if sh_type == SHT_NOBITS || sh_type == SHT_NULL || size == 0 {
            Vec::new()
        } else {
            let start = offset as usize;
            let end = start
                .checked_add(size as usize)
                .ok_or(BinaryError::SectionOutOfBounds { index })?;
            if end > file.len() {
                return Err(BinaryError::SectionOutOfBounds { index });
            }
            file[start..end].to_vec()
        };

        Ok(Self {
            name: String::new(),
            name_offset,
            sh_type,
            flags,
            addr,
            offset,
            size,
            link,
            info,
            addralign,
            entsize,
            data,
        })
    }

    /// Serialize this header into its 64-byte on-disk form (contents are
    /// written separately by the builder).
    pub fn header_bytes(&self) -> [u8; SHDR_SIZE] {
        let mut out = [0u8; SHDR_SIZE];
        out[0..4].copy_from_slice(&self.name_offset.to_le_bytes());
        out[4..8].copy_from_slice(&self.sh_type.to_le_bytes());
        out[8..16].copy_from_slice(&self.flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.addr.to_le_bytes());
        out[24..32].copy_from_slice(&self.offset.to_le_bytes());
        out[32..40].copy_from_slice(&self.size.to_le_bytes());
        out[40..44].copy_from_slice(&self.link.to_le_bytes());
        out[44..48].copy_from_slice(&self.info.to_le_bytes());
        out[48..56].copy_from_slice(&self.addralign.to_le_bytes());
        out[56..64].copy_from_slice(&self.entsize.to_le_bytes());
        out
    }

    /// Whether the section holds executable machine code.
    pub fn is_executable(&self) -> bool {
        self.flags & SHF_EXECINSTR != 0
    }

    /// Whether the section is writable data.
    pub fn is_writable_data(&self) -> bool {
        self.flags & SHF_WRITE != 0 && self.sh_type != SHT_NOBITS
    }

    /// Whether the section is uninitialized data (`.bss`).
    pub fn is_bss(&self) -> bool {
        self.sh_type == SHT_NOBITS
    }
}

/// Resolve a NUL-terminated name at `offset` inside a string table section.
pub fn string_at(strtab: &[u8], offset: usize) -> Result<String, BinaryError> {
    if offset >= strtab.len() {
        return Err(BinaryError::BadStringOffset(offset));
    }
    let end = strtab[offset..]
        .iter()
        .position(|&b| b == 0)
        .map(|p| offset + p)
        .unwrap_or(strtab.len());
    Ok(String::from_utf8_lossy(&strtab[offset..end]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_through_parse() {
        let sec = Section {
            name: String::new(),
            name_offset: 17,
            sh_type: SHT_PROGBITS,
            flags: SHF_ALLOC | SHF_EXECINSTR,
            addr: 0x40_1000,
            offset: 0,
            size: 0,
            link: 0,
            info: 0,
            addralign: 16,
            entsize: 0,
            data: Vec::new(),
        };
        let mut file = vec![0u8; SHDR_SIZE];
        file.copy_from_slice(&sec.header_bytes());
        let parsed = Section::parse(&file, 0, 1).unwrap();
        assert_eq!(parsed.name_offset, 17);
        assert_eq!(parsed.sh_type, SHT_PROGBITS);
        assert_eq!(parsed.flags, SHF_ALLOC | SHF_EXECINSTR);
        assert_eq!(parsed.addralign, 16);
        assert!(parsed.is_executable());
    }

    #[test]
    fn out_of_bounds_contents_rejected() {
        let sec = Section {
            name: String::new(),
            name_offset: 0,
            sh_type: SHT_PROGBITS,
            flags: 0,
            addr: 0,
            offset: 1_000,
            size: 64,
            link: 0,
            info: 0,
            addralign: 1,
            entsize: 0,
            data: Vec::new(),
        };
        let mut file = vec![0u8; SHDR_SIZE];
        file.copy_from_slice(&sec.header_bytes());
        let err = Section::parse(&file, 0, 2).unwrap_err();
        assert_eq!(err, BinaryError::SectionOutOfBounds { index: 2 });
    }

    #[test]
    fn truncated_header_rejected() {
        let err = Section::parse(&[0u8; 10], 0, 0).unwrap_err();
        assert!(matches!(err, BinaryError::Truncated { .. }));
    }

    #[test]
    fn string_at_reads_nul_terminated() {
        let tab = b"\0.text\0.data\0";
        assert_eq!(string_at(tab, 1).unwrap(), ".text");
        assert_eq!(string_at(tab, 7).unwrap(), ".data");
        assert_eq!(string_at(tab, 0).unwrap(), "");
        assert!(string_at(tab, 100).is_err());
    }

    #[test]
    fn string_at_unterminated_tail() {
        let tab = b"abc";
        assert_eq!(string_at(tab, 0).unwrap(), "abc");
    }

    #[test]
    fn classification_helpers() {
        let mut s = Section {
            name: ".bss".into(),
            name_offset: 0,
            sh_type: SHT_NOBITS,
            flags: SHF_ALLOC | SHF_WRITE,
            addr: 0,
            offset: 0,
            size: 128,
            link: 0,
            info: 0,
            addralign: 8,
            entsize: 0,
            data: Vec::new(),
        };
        assert!(s.is_bss());
        assert!(!s.is_writable_data());
        s.sh_type = SHT_PROGBITS;
        assert!(s.is_writable_data());
        assert!(!s.is_executable());
    }
}
