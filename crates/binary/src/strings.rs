//! Printable-string extraction — the `strings(1)` equivalent.
//!
//! The paper's second fuzzy-hash feature is "the continuous printable
//! characters extracted using the strings command (embedded text)". GNU
//! `strings` prints every run of at least 4 printable characters (ASCII
//! 0x20–0x7E plus tab) found anywhere in the file. [`extract_strings`]
//! reproduces that definition and [`strings_blob`] joins the runs with
//! newlines into the byte stream that gets fuzzy-hashed.

/// Default minimum run length, matching `strings -n 4`.
pub const DEFAULT_MIN_LENGTH: usize = 4;

/// Whether `strings(1)` considers a byte printable (ASCII printable or tab).
#[inline]
pub fn is_printable(byte: u8) -> bool {
    (0x20..=0x7E).contains(&byte) || byte == b'\t'
}

/// Extract every run of at least `min_len` printable bytes from `data`,
/// in file order.
///
/// # Examples
///
/// ```
/// use binary::strings::extract_strings;
/// let data = b"\x00\x01Usage: solver <input>\x00\xffab\x00OpenMP\x00";
/// let runs = extract_strings(data, 4);
/// assert_eq!(runs, vec!["Usage: solver <input>".to_string(), "OpenMP".to_string()]);
/// ```
pub fn extract_strings(data: &[u8], min_len: usize) -> Vec<String> {
    let min_len = min_len.max(1);
    let mut out = Vec::new();
    let mut current = Vec::new();
    for &b in data {
        if is_printable(b) {
            current.push(b);
        } else {
            if current.len() >= min_len {
                out.push(String::from_utf8_lossy(&current).into_owned());
            }
            current.clear();
        }
    }
    if current.len() >= min_len {
        out.push(String::from_utf8_lossy(&current).into_owned());
    }
    out
}

/// The newline-joined byte stream of all printable runs — the input that the
/// `ssdeep-strings` feature hashes (equivalent to `strings binary | ssdeep`).
pub fn strings_blob(data: &[u8], min_len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for s in extract_strings(data, min_len) {
        out.extend_from_slice(s.as_bytes());
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_definition() {
        assert!(is_printable(b' '));
        assert!(is_printable(b'~'));
        assert!(is_printable(b'\t'));
        assert!(!is_printable(b'\n'));
        assert!(!is_printable(0x00));
        assert!(!is_printable(0x7F));
        assert!(!is_printable(0xFF));
    }

    #[test]
    fn short_runs_are_dropped() {
        let runs = extract_strings(b"ab\0abc\0abcd\0", 4);
        assert_eq!(runs, vec!["abcd".to_string()]);
    }

    #[test]
    fn custom_min_length() {
        let runs = extract_strings(b"ab\0abc\0abcd\0", 3);
        assert_eq!(runs, vec!["abc".to_string(), "abcd".to_string()]);
    }

    #[test]
    fn min_length_zero_treated_as_one() {
        let runs = extract_strings(b"a\0b", 0);
        assert_eq!(runs, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn run_at_end_of_data_is_kept() {
        let runs = extract_strings(b"\0\0final_run", 4);
        assert_eq!(runs, vec!["final_run".to_string()]);
    }

    #[test]
    fn empty_and_binary_only_input() {
        assert!(extract_strings(b"", 4).is_empty());
        assert!(extract_strings(&[0u8, 1, 2, 3, 255, 254], 4).is_empty());
    }

    #[test]
    fn blob_joins_with_newlines() {
        let blob = strings_blob(b"\0hello\0world of hpc\0", 4);
        assert_eq!(blob, b"hello\nworld of hpc\n");
    }

    #[test]
    fn blob_of_stringless_input_is_empty() {
        assert!(strings_blob(&[0u8; 64], 4).is_empty());
    }

    #[test]
    fn order_is_preserved() {
        let runs = extract_strings(b"zzzz\0aaaa\0mmmm", 4);
        assert_eq!(runs, vec!["zzzz", "aaaa", "mmmm"]);
    }
}
