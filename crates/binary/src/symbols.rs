//! Global-symbol extraction — the `nm(1)` equivalent.
//!
//! The paper's third (and most important, per its Table 5) fuzzy-hash feature
//! is "the global text symbols extracted using the nm command (function and
//! variable names in the symbol table)". This module reproduces the parts of
//! `nm` the pipeline depends on:
//!
//! * [`symbol_class`] assigns the single-letter class `nm` prints
//!   (`T` text, `D` data, `B` bss, `A` absolute, `U` undefined, lowercase for
//!   local binding).
//! * [`global_defined_symbols`] lists defined global symbols sorted by name,
//!   matching `nm -g --defined-only | sort` (nm sorts alphabetically by
//!   default).
//! * [`symbols_blob`] renders the newline-joined name list that the
//!   `ssdeep-symbols` feature hashes.

use crate::elf::{ElfFile, Symbol, SymbolBinding, SymbolType};

/// A symbol as `nm` would report it: name plus single-letter class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmSymbol {
    /// Symbol name.
    pub name: String,
    /// `nm` class letter (`T`, `D`, `B`, `A`, `U`, ... lowercase if local).
    pub class: char,
    /// Symbol value (address).
    pub value: u64,
}

/// Compute the `nm` class letter for `sym` within `elf`.
pub fn symbol_class(elf: &ElfFile, sym: &Symbol) -> char {
    use crate::elf::types::{SHN_ABS, SHN_UNDEF};
    let upper = if !sym.is_defined() || sym.shndx == SHN_UNDEF {
        'U'
    } else if sym.shndx == SHN_ABS {
        'A'
    } else {
        let section = elf.sections().get(usize::from(sym.shndx));
        match section {
            Some(s) if s.is_executable() => 'T',
            Some(s) if s.is_bss() => 'B',
            Some(s) if s.is_writable_data() => 'D',
            Some(_) => {
                // Read-only data and anything else allocatable reports as 'R'
                // in nm; treat non-alloc oddities as 'N'.
                'R'
            }
            None => '?',
        }
    };
    match sym.binding {
        SymbolBinding::Local if upper != 'U' => upper.to_ascii_lowercase(),
        SymbolBinding::Weak if upper == 'T' => 'W',
        _ => upper,
    }
}

/// All *defined global* symbols of `elf`, sorted by name — the output of
/// `nm -g --defined-only <file> | sort`, skipping section/file pseudo-symbols.
pub fn global_defined_symbols(elf: &ElfFile) -> Vec<NmSymbol> {
    let mut out: Vec<NmSymbol> = elf
        .symbols()
        .iter()
        .filter(|s| {
            s.is_defined()
                && s.is_global()
                && !s.name.is_empty()
                && s.sym_type != SymbolType::Section
                && s.sym_type != SymbolType::File
        })
        .map(|s| NmSymbol {
            name: s.name.clone(),
            class: symbol_class(elf, s),
            value: s.value,
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Only the *text* (code) symbols among the defined globals — functions the
/// application exports, which the paper highlights as the most stable
/// identity feature across versions.
pub fn global_text_symbols(elf: &ElfFile) -> Vec<NmSymbol> {
    global_defined_symbols(elf)
        .into_iter()
        .filter(|s| s.class == 'T' || s.class == 'W')
        .collect()
}

/// The newline-joined global symbol names — the byte stream the
/// `ssdeep-symbols` feature hashes (equivalent to
/// `nm -g --defined-only binary | awk '{print $3}' | ssdeep`).
pub fn symbols_blob(elf: &ElfFile) -> Vec<u8> {
    let mut out = Vec::new();
    for s in global_defined_symbols(elf) {
        out.extend_from_slice(s.name.as_bytes());
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::ElfBuilder;

    fn sample() -> ElfFile {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 256]);
        b.add_data_section(vec![0u8; 64]);
        b.add_global_function("zeta_solver", 0x00, 32);
        b.add_global_function("alpha_init", 0x20, 32);
        b.add_global_object("global_config", 0x0, 16);
        b.add_local_function("static_helper", 0x40, 16);
        b.add_undefined_symbol("MPI_Send");
        ElfFile::parse(&b.build()).unwrap()
    }

    #[test]
    fn globals_are_sorted_by_name() {
        let elf = sample();
        let names: Vec<String> = global_defined_symbols(&elf)
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, vec!["alpha_init", "global_config", "zeta_solver"]);
    }

    #[test]
    fn undefined_and_local_symbols_excluded() {
        let elf = sample();
        let names: Vec<String> = global_defined_symbols(&elf)
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert!(!names.contains(&"MPI_Send".to_string()));
        assert!(!names.contains(&"static_helper".to_string()));
    }

    #[test]
    fn classes_match_nm_semantics() {
        let elf = sample();
        let syms = global_defined_symbols(&elf);
        let class_of = |n: &str| syms.iter().find(|s| s.name == n).unwrap().class;
        assert_eq!(class_of("alpha_init"), 'T');
        assert_eq!(class_of("zeta_solver"), 'T');
        assert_eq!(class_of("global_config"), 'D');
    }

    #[test]
    fn undefined_symbol_class_is_u() {
        let elf = sample();
        let mpi = elf.symbols().iter().find(|s| s.name == "MPI_Send").unwrap();
        assert_eq!(symbol_class(&elf, mpi), 'U');
    }

    #[test]
    fn local_symbol_class_is_lowercase() {
        let elf = sample();
        let helper = elf
            .symbols()
            .iter()
            .find(|s| s.name == "static_helper")
            .unwrap();
        assert_eq!(symbol_class(&elf, helper), 't');
    }

    #[test]
    fn text_symbols_only_contains_functions_in_text() {
        let elf = sample();
        let names: Vec<String> = global_text_symbols(&elf)
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, vec!["alpha_init", "zeta_solver"]);
    }

    #[test]
    fn blob_is_newline_joined_sorted_names() {
        let elf = sample();
        let blob = String::from_utf8(symbols_blob(&elf)).unwrap();
        assert_eq!(blob, "alpha_init\nglobal_config\nzeta_solver\n");
    }

    #[test]
    fn stripped_binary_has_empty_blob() {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0xC3; 32]);
        let elf = ElfFile::parse(&b.build()).unwrap();
        assert!(symbols_blob(&elf).is_empty());
        assert!(global_defined_symbols(&elf).is_empty());
    }
}
