//! Error type for ELF parsing.

use std::fmt;

/// Reasons an ELF file can fail to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The file is shorter than the structure being read requires.
    Truncated {
        /// What was being read when the data ran out.
        context: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The file does not start with the ELF magic bytes.
    BadMagic,
    /// The ELF class is not ELFCLASS64.
    UnsupportedClass(u8),
    /// The data encoding is not little-endian (ELFDATA2LSB).
    UnsupportedEndianness(u8),
    /// The ELF version field is not 1.
    UnsupportedVersion(u8),
    /// A section header referenced data outside the file.
    SectionOutOfBounds {
        /// Index of the offending section.
        index: usize,
    },
    /// A string-table index pointed outside its string table.
    BadStringOffset(usize),
    /// A symbol-table section had an unexpected entry size.
    BadSymbolEntrySize(u64),
    /// The section-header string table index was invalid.
    BadShStrNdx(u16),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated ELF while reading {context}: needed {needed} bytes, had {available}"
            ),
            BinaryError::BadMagic => write!(f, "missing ELF magic (\\x7fELF)"),
            BinaryError::UnsupportedClass(c) => {
                write!(
                    f,
                    "unsupported ELF class {c} (only ELFCLASS64 is supported)"
                )
            }
            BinaryError::UnsupportedEndianness(e) => {
                write!(
                    f,
                    "unsupported ELF data encoding {e} (only little-endian is supported)"
                )
            }
            BinaryError::UnsupportedVersion(v) => write!(f, "unsupported ELF version {v}"),
            BinaryError::SectionOutOfBounds { index } => {
                write!(f, "section {index} references data outside the file")
            }
            BinaryError::BadStringOffset(o) => {
                write!(f, "string offset {o} is outside its string table")
            }
            BinaryError::BadSymbolEntrySize(s) => {
                write!(
                    f,
                    "symbol table entry size {s} is not the ELF64 symbol size (24)"
                )
            }
            BinaryError::BadShStrNdx(i) => {
                write!(f, "section header string table index {i} is out of range")
            }
        }
    }
}

impl std::error::Error for BinaryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BinaryError::Truncated {
            context: "header",
            needed: 64,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("header") && s.contains("64") && s.contains("10"));
        assert!(BinaryError::BadMagic.to_string().contains("ELF"));
        assert!(BinaryError::UnsupportedClass(1).to_string().contains('1'));
        assert!(BinaryError::SectionOutOfBounds { index: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(BinaryError::BadMagic);
        assert!(!e.to_string().is_empty());
    }
}
