//! Property-based tests for the ELF build/parse round trip and the
//! strings/symbols extractors.

use binary::elf::{ElfBuilder, ElfFile};
use binary::strings::{extract_strings, is_printable, strings_blob};
use binary::symbols::{global_defined_symbols, symbols_blob};
use proptest::prelude::*;

/// A strategy for plausible C-style identifiers.
fn identifier() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,30}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the builder produces, the parser accepts, and section
    /// contents survive the round trip byte-for-byte.
    #[test]
    fn build_parse_roundtrip(
        text in proptest::collection::vec(any::<u8>(), 0..4096),
        rodata in proptest::collection::vec(any::<u8>(), 0..2048),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut b = ElfBuilder::new();
        b.add_text_section(text.clone());
        b.add_rodata_section(rodata.clone());
        b.add_data_section(data.clone());
        let bytes = b.build();
        let elf = ElfFile::parse(&bytes).expect("built ELF must parse");
        prop_assert_eq!(&elf.section_by_name(".text").unwrap().data, &text);
        prop_assert_eq!(&elf.section_by_name(".rodata").unwrap().data, &rodata);
        prop_assert_eq!(&elf.section_by_name(".data").unwrap().data, &data);
    }

    /// Every global function added to the builder appears exactly once in the
    /// nm-style global symbol list, and the list is sorted.
    #[test]
    fn symbols_survive_roundtrip(names in proptest::collection::hash_set(identifier(), 1..40)) {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 4096]);
        for (i, name) in names.iter().enumerate() {
            b.add_global_function(name, (i * 16) as u64, 16);
        }
        let elf = ElfFile::parse(&b.build()).unwrap();
        let syms = global_defined_symbols(&elf);
        prop_assert_eq!(syms.len(), names.len());
        let listed: Vec<&str> = syms.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = listed.clone();
        sorted.sort();
        prop_assert_eq!(&listed, &sorted);
        for name in &names {
            prop_assert!(listed.contains(&name.as_str()));
        }
    }

    /// The symbols blob is newline-joined and contains every name.
    #[test]
    fn symbols_blob_contains_all_names(names in proptest::collection::hash_set(identifier(), 0..20)) {
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 1024]);
        for (i, name) in names.iter().enumerate() {
            b.add_global_function(name, (i * 8) as u64, 8);
        }
        let elf = ElfFile::parse(&b.build()).unwrap();
        let blob = String::from_utf8(symbols_blob(&elf)).unwrap();
        for name in &names {
            prop_assert!(blob.lines().any(|l| l == name));
        }
        prop_assert_eq!(blob.lines().count(), names.len());
    }

    /// Every extracted string is printable, at least min_len long, and
    /// actually present in the input.
    #[test]
    fn extracted_strings_are_printable_substrings(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        min_len in 1usize..8,
    ) {
        let runs = extract_strings(&data, min_len);
        for run in &runs {
            prop_assert!(run.len() >= min_len);
            prop_assert!(run.bytes().all(is_printable));
            let needle = run.as_bytes();
            prop_assert!(data.windows(needle.len()).any(|w| w == needle));
        }
    }

    /// The strings blob decomposes back into exactly the extracted runs.
    #[test]
    fn blob_matches_runs(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let runs = extract_strings(&data, 4);
        let blob = strings_blob(&data, 4);
        let joined: Vec<&str> = std::str::from_utf8(&blob)
            .unwrap()
            .lines()
            .collect();
        prop_assert_eq!(joined.len(), runs.len());
        for (a, b) in joined.iter().zip(runs.iter()) {
            prop_assert_eq!(*a, b.as_str());
        }
    }

    /// Parsing arbitrary bytes never panics: it returns Ok or a clean error.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = ElfFile::parse(&data);
    }
}
