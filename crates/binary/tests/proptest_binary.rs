//! Randomized (but fully deterministic) property tests for the ELF
//! build/parse round trip and the strings/symbols extractors. The build
//! environment has no crates.io access, so instead of `proptest` these tests
//! drive the same properties with a seeded SplitMix64 generator over a fixed
//! number of cases.

use binary::elf::{ElfBuilder, ElfFile};
use binary::strings::{extract_strings, is_printable, strings_blob};
use binary::symbols::{global_defined_symbols, symbols_blob};
use std::collections::HashSet;

/// SplitMix64 — the deterministic case generator for these tests.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, low: usize, high: usize) -> usize {
        low + (self.next() as usize) % (high - low)
    }

    fn bytes(&mut self, low: usize, high: usize) -> Vec<u8> {
        let len = self.range(low, high);
        (0..len).map(|_| self.next() as u8).collect()
    }

    /// A plausible C-style identifier: `[a-zA-Z_][a-zA-Z0-9_]{0,30}`.
    fn identifier(&mut self) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
        let mut name = String::new();
        name.push(FIRST[self.range(0, FIRST.len())] as char);
        for _ in 0..self.range(0, 31) {
            name.push(REST[self.range(0, REST.len())] as char);
        }
        name
    }

    /// A set of `low..high` distinct identifiers.
    fn identifiers(&mut self, low: usize, high: usize) -> HashSet<String> {
        let target = self.range(low, high);
        let mut names = HashSet::new();
        while names.len() < target {
            names.insert(self.identifier());
        }
        names
    }
}

/// Whatever the builder produces, the parser accepts, and section contents
/// survive the round trip byte-for-byte.
#[test]
fn build_parse_roundtrip() {
    let mut g = Gen(10);
    for _ in 0..48 {
        let text = g.bytes(0, 4096);
        let rodata = g.bytes(0, 2048);
        let data = g.bytes(0, 512);
        let mut b = ElfBuilder::new();
        b.add_text_section(text.clone());
        b.add_rodata_section(rodata.clone());
        b.add_data_section(data.clone());
        let bytes = b.build();
        let elf = ElfFile::parse(&bytes).expect("built ELF must parse");
        assert_eq!(&elf.section_by_name(".text").unwrap().data, &text);
        assert_eq!(&elf.section_by_name(".rodata").unwrap().data, &rodata);
        assert_eq!(&elf.section_by_name(".data").unwrap().data, &data);
    }
}

/// Every global function added to the builder appears exactly once in the
/// nm-style global symbol list, and the list is sorted.
#[test]
fn symbols_survive_roundtrip() {
    let mut g = Gen(11);
    for _ in 0..48 {
        let names = g.identifiers(1, 40);
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 4096]);
        for (i, name) in names.iter().enumerate() {
            b.add_global_function(name, (i * 16) as u64, 16);
        }
        let elf = ElfFile::parse(&b.build()).unwrap();
        let syms = global_defined_symbols(&elf);
        assert_eq!(syms.len(), names.len());
        let listed: Vec<&str> = syms.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(&listed, &sorted);
        for name in &names {
            assert!(listed.contains(&name.as_str()));
        }
    }
}

/// The symbols blob is newline-joined and contains every name.
#[test]
fn symbols_blob_contains_all_names() {
    let mut g = Gen(12);
    for _ in 0..48 {
        let names = g.identifiers(0, 20);
        let mut b = ElfBuilder::new();
        b.add_text_section(vec![0x90; 1024]);
        for (i, name) in names.iter().enumerate() {
            b.add_global_function(name, (i * 8) as u64, 8);
        }
        let elf = ElfFile::parse(&b.build()).unwrap();
        let blob = String::from_utf8(symbols_blob(&elf)).unwrap();
        for name in &names {
            assert!(blob.lines().any(|l| l == name));
        }
        assert_eq!(blob.lines().count(), names.len());
    }
}

/// Every extracted string is printable, at least min_len long, and actually
/// present in the input.
#[test]
fn extracted_strings_are_printable_substrings() {
    let mut g = Gen(13);
    for _ in 0..48 {
        let data = g.bytes(0, 4096);
        let min_len = g.range(1, 8);
        let runs = extract_strings(&data, min_len);
        for run in &runs {
            assert!(run.len() >= min_len);
            assert!(run.bytes().all(is_printable));
            let needle = run.as_bytes();
            assert!(data.windows(needle.len()).any(|w| w == needle));
        }
    }
}

/// The strings blob decomposes back into exactly the extracted runs.
#[test]
fn blob_matches_runs() {
    let mut g = Gen(14);
    for _ in 0..48 {
        let data = g.bytes(0, 2048);
        let runs = extract_strings(&data, 4);
        let blob = strings_blob(&data, 4);
        let joined: Vec<&str> = std::str::from_utf8(&blob).unwrap().lines().collect();
        assert_eq!(joined.len(), runs.len());
        for (a, b) in joined.iter().zip(runs.iter()) {
            assert_eq!(*a, b.as_str());
        }
    }
}

/// Parsing arbitrary bytes never panics: it returns Ok or a clean error.
#[test]
fn parser_never_panics() {
    let mut g = Gen(15);
    for _ in 0..48 {
        let data = g.bytes(0, 2048);
        let _ = ElfFile::parse(&data);
    }
    // A few adversarial prefixes of a valid ELF.
    let mut b = ElfBuilder::new();
    b.add_text_section(vec![0x90; 256]);
    let valid = b.build();
    for len in [0, 1, 4, 16, 52, 64, valid.len() / 2, valid.len() - 1] {
        let _ = ElfFile::parse(&valid[..len]);
    }
}
